//! Deterministic simulation backend with fault injection.
//!
//! [`run_sim_spmd`] executes the same SPMD closures as [`run_spmd`], but
//! every interleaving decision — which processor runs next, when each
//! in-flight message is delivered, whether a lossy send is dropped or
//! duplicated — is made by a central scheduler driven by a seeded RNG.
//! Re-running with the same [`FaultPlan`] replays the exact execution,
//! which turns "flaky under concurrency" into "reproducible from a seed".
//!
//! ## How determinism is achieved with real threads
//!
//! Each logical processor still runs on its own OS thread (so the solver
//! code is byte-for-byte the production code), but the threads are fully
//! *serialized*: every worker parks on a start barrier before executing
//! any user code, and every [`Comm`] call parks it again, handing control
//! to the scheduler each time. The scheduler only makes a choice when
//! **all** live workers are parked, so the OS thread scheduler has no
//! influence on the outcome — even cross-rank shared state touched
//! between comm calls (gauges, progress counters) is updated in a
//! replayable order, and the only nondeterminism source is the seeded
//! [`SimRng`].
//!
//! ## Adversarial scheduling policies
//!
//! The scheduler's choice among enabled actions is shaped by the plan's
//! [`SchedPolicy`]: [`Uniform`](SchedPolicy::Uniform) samples uniformly,
//! [`StarveRank`](SchedPolicy::StarveRank) never services one rank while
//! anything else can make progress, [`DeliverLast`](SchedPolicy::DeliverLast)
//! always delays the oldest in-flight message the longest, and
//! [`FifoPerPair`](SchedPolicy::FifoPerPair) forces in-order delivery per
//! sender/receiver pair (the "nice network" that masks reordering bugs —
//! useful as a control). Every policy only *filters* the enabled set and
//! falls back to the full set when the filter would empty it, so liveness
//! is preserved and the execution stays a pure function of
//! `(seed, policy)`.
//!
//! ## Faults
//!
//! - **Reordering / delay** are inherent: the scheduler picks (per the
//!   policy) among all enabled actions, so a message can sit in flight
//!   while an arbitrary amount of other progress happens.
//! - **Lossy drops**: each [`Comm::send_lossy`] is dropped with
//!   probability [`FaultPlan::drop_lossy`] (the call returns `false`,
//!   exactly as if the peer had exited).
//! - **Duplicated delivery**: each lossy-sent message is delivered twice
//!   with probability [`FaultPlan::duplicate_lossy`] — modeling an
//!   at-least-once transport. Only `send_lossy` traffic is duplicated;
//!   plain `send` models the reliable exactly-once channel.
//! - **Crashes**: a worker panic is caught, all other workers are
//!   unwound, and the original panic is re-raised on the caller with the
//!   seed in hand (solver-level fault points — injected zero pivots,
//!   panic-at-task — live in `pastix-solver`'s chaos options).
//!
//! Deadlocks (every live worker blocked in `recv` with nothing in
//! flight) are detected and reported with a per-rank state dump and the
//! seed that produced them.

use crate::{Comm, Envelope, SendOutcome};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// SplitMix64: small, fast, and plenty for schedule shuffling.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates an RNG from a seed; distinct seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Adversarial scheduling policy of the simulator: how the central
/// scheduler chooses among the enabled actions (servicing a parked worker
/// or delivering an in-flight message). Every policy is deterministic
/// given the plan's seed, and every policy preserves liveness: it only
/// filters the enabled set, falling back to the full set when the filter
/// would leave nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Uniform sampling over all enabled actions (the baseline chaos).
    #[default]
    Uniform,
    /// Never service rank `r`'s parked call while any other action is
    /// enabled: maximal starvation of one worker. Messages *to* the
    /// starved rank still get delivered, so its mailbox piles up.
    StarveRank(usize),
    /// Always pick the oldest undelivered message last: the anti-FIFO
    /// network that maximally delays whatever has been in flight longest.
    DeliverLast,
    /// In-order delivery per (sender, receiver) pair — the "nice network"
    /// that masks reordering bugs; useful as a control to show a failure
    /// is reordering-dependent.
    FifoPerPair,
}

/// Seed, fault probabilities, and scheduling policy for one simulated
/// execution: every run is a pure function of this plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the interleaving RNG; same plan → same execution.
    pub seed: u64,
    /// Probability that a `send_lossy` is silently dropped (returns
    /// `false` to the sender).
    pub drop_lossy: f64,
    /// Probability that a lossy-sent message is delivered twice.
    pub duplicate_lossy: f64,
    /// How the scheduler picks among enabled actions.
    pub policy: SchedPolicy,
}

impl FaultPlan {
    /// Starts a [`FaultPlanBuilder`] with the given seed, no faults, and
    /// the [`Uniform`](SchedPolicy::Uniform) policy.
    ///
    /// ```
    /// use pastix_runtime::sim::{FaultPlan, SchedPolicy};
    /// let plan = FaultPlan::builder(42)
    ///     .drop_lossy(0.25)
    ///     .duplicate_lossy(0.25)
    ///     .policy(SchedPolicy::StarveRank(0))
    ///     .build();
    /// assert_eq!(plan.seed, 42);
    /// assert_eq!(plan.policy, SchedPolicy::StarveRank(0));
    /// // Replay recipe: the pair (seed, policy) pins the whole execution.
    /// assert_eq!(plan, FaultPlan { ..plan });
    /// ```
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            plan: FaultPlan {
                seed,
                drop_lossy: 0.0,
                duplicate_lossy: 0.0,
                policy: SchedPolicy::Uniform,
            },
        }
    }

    /// Pure interleaving chaos: random scheduling and delivery order, but
    /// no drops or duplicates. (Delegates to [`FaultPlan::builder`].)
    pub fn interleave_only(seed: u64) -> Self {
        Self::builder(seed).build()
    }

    /// Interleaving chaos plus the given lossy-drop probability.
    /// (Delegates to [`FaultPlan::builder`].)
    pub fn with_drops(seed: u64, drop_lossy: f64) -> Self {
        Self::builder(seed).drop_lossy(drop_lossy).build()
    }

    /// Interleaving chaos plus duplicate delivery of lossy traffic.
    /// (Delegates to [`FaultPlan::builder`].)
    pub fn with_duplicates(seed: u64, duplicate_lossy: f64) -> Self {
        Self::builder(seed).duplicate_lossy(duplicate_lossy).build()
    }
}

/// Builder for [`FaultPlan`]; see [`FaultPlan::builder`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    plan: FaultPlan,
}

impl FaultPlanBuilder {
    /// Sets the probability that a lossy send is dropped.
    pub fn drop_lossy(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability {p} outside [0, 1]");
        self.plan.drop_lossy = p;
        self
    }

    /// Sets the probability that a lossy-sent message is delivered twice.
    pub fn duplicate_lossy(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplicate probability {p} outside [0, 1]"
        );
        self.plan.duplicate_lossy = p;
        self
    }

    /// Sets the adversarial scheduling policy.
    pub fn policy(mut self, policy: SchedPolicy) -> Self {
        self.plan.policy = policy;
        self
    }

    /// Finishes the plan.
    pub fn build(self) -> FaultPlan {
        self.plan
    }
}

/// A worker's parked request, waiting for the scheduler.
enum Call<M> {
    /// The worker parked before executing any user code; servicing it
    /// releases the worker into its closure. Without this barrier the
    /// stretch from thread spawn to each worker's *first* comm call runs
    /// under the OS scheduler — concurrently across ranks — so any
    /// cross-rank shared state touched there (e.g. the run-global
    /// progress counter stamping heartbeats) would race and break
    /// replayability.
    Start,
    Send { to: usize, msg: M, lossy: bool },
    Recv,
    TryRecv,
    /// The worker's closure returned (or panicked); it will make no more
    /// calls.
    Finished,
}

enum Reply<M> {
    /// Start barrier released: run the closure.
    Go,
    /// Send accepted into the network.
    Sent,
    /// Send dropped by the lossy fault; the message is handed back so the
    /// sender can retry without cloning.
    Dropped(M),
    /// The peer exited; the message is handed back. A non-lossy send must
    /// panic on the sender.
    Closed(M),
    Msg(Envelope<M>),
    NoMsg,
}

/// Per-processor context of the simulation backend; implements [`Comm`].
pub struct SimCtx<M> {
    rank: usize,
    n_procs: usize,
    call_tx: Sender<(usize, Call<M>)>,
    reply_rx: Receiver<Reply<M>>,
}

impl<M> SimCtx<M> {
    fn rendezvous(&self, call: Call<M>) -> Reply<M> {
        if self.call_tx.send((self.rank, call)).is_err() {
            // The scheduler died (deadlock panic unwinding run_sim_spmd):
            // unwind this worker quietly; the scheduler's panic is the one
            // that reaches the user.
            panic!("sim scheduler terminated");
        }
        match self.reply_rx.recv() {
            Ok(r) => r,
            Err(_) => panic!("sim scheduler terminated"),
        }
    }
}

impl<M: Send> Comm<M> for SimCtx<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn n_procs(&self) -> usize {
        self.n_procs
    }

    fn send(&self, to: usize, msg: M) {
        match self.rendezvous(Call::Send {
            to,
            msg,
            lossy: false,
        }) {
            Reply::Sent => {}
            Reply::Closed(_) => panic!(
                "rank {} send to rank {}: peer mailbox closed (peer exited before this message)",
                self.rank, to
            ),
            _ => unreachable!("sim: bad reply to send"),
        }
    }

    fn send_faulty(&self, to: usize, msg: M) -> SendOutcome<M> {
        match self.rendezvous(Call::Send {
            to,
            msg,
            lossy: true,
        }) {
            Reply::Sent => SendOutcome::Delivered,
            Reply::Dropped(m) => SendOutcome::Dropped(m),
            Reply::Closed(m) => SendOutcome::Closed(m),
            _ => unreachable!("sim: bad reply to send_faulty"),
        }
    }

    fn recv(&self) -> Envelope<M> {
        match self.rendezvous(Call::Recv) {
            Reply::Msg(env) => env,
            _ => unreachable!("sim: bad reply to recv"),
        }
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        match self.rendezvous(Call::TryRecv) {
            Reply::Msg(env) => Some(env),
            Reply::NoMsg => None,
            _ => unreachable!("sim: bad reply to try_recv"),
        }
    }
}

impl<M: Send> SimCtx<M> {
    /// This processor's rank (inherent mirror of [`Comm::rank`], so
    /// closures taking `SimCtx` by value don't need the trait in scope).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of logical processors.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// See [`Comm::send`].
    pub fn send(&self, to: usize, msg: M) {
        Comm::send(self, to, msg)
    }

    /// See [`Comm::send_lossy`].
    pub fn send_lossy(&self, to: usize, msg: M) -> bool {
        Comm::send_lossy(self, to, msg)
    }

    /// See [`Comm::send_faulty`].
    pub fn send_faulty(&self, to: usize, msg: M) -> SendOutcome<M> {
        Comm::send_faulty(self, to, msg)
    }

    /// See [`Comm::send_resilient`].
    pub fn send_resilient(&self, to: usize, msg: M) -> bool {
        Comm::send_resilient(self, to, msg)
    }

    /// See [`Comm::recv`].
    pub fn recv(&self) -> Envelope<M> {
        Comm::recv(self)
    }

    /// See [`Comm::try_recv`].
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        Comm::try_recv(self)
    }
}

/// An in-flight message: sent, not yet delivered to its mailbox.
struct InFlight<M> {
    to: usize,
    env: Envelope<M>,
    lossy: bool,
    /// Monotonic send order, so the policies can reason about message age
    /// ("oldest in flight", "head of the (from, to) pair's queue").
    seq: u64,
}

enum WorkerState<M> {
    /// Executing user code between comm calls.
    Running,
    /// Parked on a comm call, waiting for the scheduler.
    Parked(Call<M>),
    /// Closure returned or panicked.
    Done,
}

struct SchedulerState<M> {
    plan: FaultPlan,
    rng: SimRng,
    states: Vec<WorkerState<M>>,
    mailboxes: Vec<std::collections::VecDeque<Envelope<M>>>,
    net: Vec<InFlight<M>>,
    running: usize,
    live: usize,
    steps: u64,
    /// Send-order counter feeding [`InFlight::seq`].
    next_seq: u64,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Service rank's parked call.
    Service(usize),
    /// Deliver net[i] to its mailbox.
    Deliver(usize),
}

impl<M: Clone> SchedulerState<M> {
    fn describe(&self) -> String {
        let mut s = String::new();
        for (r, st) in self.states.iter().enumerate() {
            let what = match st {
                WorkerState::Running => "running".to_string(),
                WorkerState::Parked(Call::Start) => "parked at start barrier".to_string(),
                WorkerState::Parked(Call::Recv) => {
                    format!("blocked in recv (mailbox: {})", self.mailboxes[r].len())
                }
                WorkerState::Parked(Call::Send { to, lossy, .. }) => {
                    format!("parked in send(to={to}, lossy={lossy})")
                }
                WorkerState::Parked(Call::TryRecv) => "parked in try_recv".to_string(),
                WorkerState::Parked(Call::Finished) | WorkerState::Done => "finished".to_string(),
            };
            s.push_str(&format!("  rank {r}: {what}\n"));
        }
        s.push_str(&format!(
            "  in-flight messages: {}, steps executed: {}",
            self.net.len(),
            self.steps
        ));
        s
    }

    fn enabled_actions(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        for (r, st) in self.states.iter().enumerate() {
            if let WorkerState::Parked(call) = st {
                let serviceable = match call {
                    Call::Recv => !self.mailboxes[r].is_empty(),
                    Call::Start | Call::Send { .. } | Call::TryRecv => true,
                    Call::Finished => false,
                };
                if serviceable {
                    acts.push(Action::Service(r));
                }
            }
        }
        for i in 0..self.net.len() {
            acts.push(Action::Deliver(i));
        }
        acts
    }

    /// Applies the plan's [`SchedPolicy`] to the enabled set. Policies
    /// only *remove* candidates; when a filter would empty the set, the
    /// full set is restored so no policy can deadlock a live execution.
    fn policy_filter(&self, acts: Vec<Action>) -> Vec<Action> {
        let keep: Vec<Action> = match self.plan.policy {
            SchedPolicy::Uniform => return acts,
            SchedPolicy::StarveRank(r) => acts
                .iter()
                .copied()
                .filter(|a| !matches!(a, Action::Service(x) if *x == r))
                .collect(),
            SchedPolicy::DeliverLast => {
                let oldest = self
                    .net
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, m)| m.seq)
                    .map(|(i, _)| i);
                match oldest {
                    None => return acts,
                    Some(oldest) => acts
                        .iter()
                        .copied()
                        .filter(|a| !matches!(a, Action::Deliver(i) if *i == oldest))
                        .collect(),
                }
            }
            SchedPolicy::FifoPerPair => {
                // Only the head (lowest seq) of each (from, to) queue is
                // deliverable; computation actions are unconstrained.
                let mut heads: std::collections::HashMap<(usize, usize), usize> =
                    std::collections::HashMap::new();
                for (i, m) in self.net.iter().enumerate() {
                    let e = heads.entry((m.env.from, m.to)).or_insert(i);
                    if self.net[*e].seq > m.seq {
                        *e = i;
                    }
                }
                acts.iter()
                    .copied()
                    .filter(|a| match a {
                        Action::Deliver(i) => heads.values().any(|&h| h == *i),
                        Action::Service(_) => true,
                    })
                    .collect()
            }
        };
        if keep.is_empty() {
            acts
        } else {
            keep
        }
    }
}

/// Runs `n_procs` logical processors under the deterministic simulator
/// with the given fault plan; returns results in rank order.
///
/// Semantics match [`run_spmd`] (same `Comm` contract, same panic
/// behavior: a worker panic propagates to the caller after every other
/// worker has unwound), but the interleaving is a pure function of
/// `plan`. A protocol deadlock — every live worker blocked in `recv`
/// with an empty network — panics with a per-rank state dump naming
/// `plan.seed` and `plan.policy`.
///
/// `M: Clone` is required so the duplicate-delivery fault can replicate a
/// message; with `duplicate_lossy == 0.0` no clone ever happens.
///
/// ```
/// use pastix_runtime::sim::{run_sim_spmd, FaultPlan};
/// let plan = FaultPlan::interleave_only(42);
/// let out = run_sim_spmd::<usize, usize, _>(3, &plan, |ctx| {
///     if ctx.rank() == 0 {
///         (1..ctx.n_procs()).map(|_| ctx.recv().msg).sum()
///     } else {
///         ctx.send(0, ctx.rank());
///         0
///     }
/// });
/// assert_eq!(out[0], 3);
/// ```
pub fn run_sim_spmd<M, R, F>(n_procs: usize, plan: &FaultPlan, f: F) -> Vec<R>
where
    M: Send + Clone,
    R: Send,
    F: Fn(SimCtx<M>) -> R + Sync,
{
    assert!(n_procs >= 1);
    let (call_tx, call_rx) = channel::<(usize, Call<M>)>();
    let mut reply_txs: Vec<Sender<Reply<M>>> = Vec::with_capacity(n_procs);
    let mut contexts: Vec<SimCtx<M>> = Vec::with_capacity(n_procs);
    for rank in 0..n_procs {
        let (tx, rx) = channel();
        reply_txs.push(tx);
        contexts.push(SimCtx {
            rank,
            n_procs,
            call_tx: call_tx.clone(),
            reply_rx: rx,
        });
    }
    drop(call_tx);

    type Slot<R> = Mutex<Option<Result<R, Box<dyn Any + Send>>>>;
    let results: Vec<Slot<R>> = (0..n_procs).map(|_| Mutex::new(None)).collect();
    let f = &f;

    std::thread::scope(|scope| {
        // Owned by this closure: dropping the reply senders (normal exit,
        // early return on a detected worker panic, or deadlock unwind) is
        // what unparks any still-blocked workers so the scope can join.
        let reply_txs = reply_txs;
        for ctx in contexts {
            let rank = ctx.rank;
            let finish_tx = ctx.call_tx.clone();
            let slot = &results[rank];
            scope.spawn(move || {
                let out = catch_unwind(AssertUnwindSafe(|| {
                    // Park before touching user code: from here on the
                    // scheduler serializes every instruction this worker
                    // executes, not just the stretch after its first
                    // comm call.
                    match ctx.rendezvous(Call::Start) {
                        Reply::Go => {}
                        _ => unreachable!("sim: bad reply to start barrier"),
                    }
                    f(ctx)
                }));
                *slot.lock().unwrap() = Some(out);
                // Best-effort: the scheduler may already be gone.
                let _ = finish_tx.send((rank, Call::Finished));
            });
        }

        let mut st = SchedulerState::<M> {
            plan: *plan,
            rng: SimRng::new(plan.seed),
            states: (0..n_procs).map(|_| WorkerState::Running).collect(),
            mailboxes: (0..n_procs)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            net: Vec::new(),
            running: n_procs,
            live: n_procs,
            steps: 0,
            next_seq: 0,
        };

        loop {
            // Phase 1: wait until every live worker is parked (or done), so
            // the OS thread scheduler cannot influence the choice below.
            while st.running > 0 {
                let (rank, call) = call_rx
                    .recv()
                    .expect("sim: all workers vanished without finishing");
                st.running -= 1;
                match call {
                    Call::Finished => {
                        st.states[rank] = WorkerState::Done;
                        st.live -= 1;
                        // Undelivered traffic to a dead worker can never be
                        // observed; drop it so it doesn't count as progress.
                        st.net.retain(|m| m.to != rank);
                    }
                    call => st.states[rank] = WorkerState::Parked(call),
                }
            }

            if st.live == 0 {
                break;
            }

            // Phase 2: pick one enabled action with the seeded RNG.
            let actions = st.enabled_actions();
            if actions.is_empty() {
                // Every live worker is blocked in recv and nothing is in
                // flight. If a worker panicked, that is the root cause:
                // re-raise it instead of reporting a secondary deadlock.
                for slot in &results {
                    if let Some(Err(_)) = &*slot.lock().unwrap() {
                        // Dropping the scheduler (reply senders) unparks the
                        // blocked workers; propagate after scope join below.
                        return;
                    }
                }
                panic!(
                    "sim deadlock (seed {}, policy {:?}): every live worker is blocked and the network is empty\n{}",
                    st.plan.seed,
                    st.plan.policy,
                    st.describe()
                );
            }
            st.steps += 1;
            let actions = st.policy_filter(actions);
            let pick = st.rng.below(actions.len());
            match actions[pick] {
                Action::Deliver(i) => {
                    let m = st.net.remove(i);
                    if m.lossy && st.rng.chance(st.plan.duplicate_lossy) {
                        st.mailboxes[m.to].push_back(m.env.clone());
                    }
                    st.mailboxes[m.to].push_back(m.env);
                }
                Action::Service(rank) => {
                    let call =
                        std::mem::replace(&mut st.states[rank], WorkerState::Running);
                    let WorkerState::Parked(call) = call else {
                        unreachable!("sim: serviced a non-parked worker")
                    };
                    let reply = match call {
                        Call::Start => Reply::Go,
                        Call::Send { to, msg, lossy } => {
                            if matches!(st.states[to], WorkerState::Done) {
                                Reply::Closed(msg)
                            } else if lossy && st.rng.chance(st.plan.drop_lossy) {
                                Reply::Dropped(msg)
                            } else {
                                st.net.push(InFlight {
                                    to,
                                    env: Envelope { from: rank, msg },
                                    lossy,
                                    seq: st.next_seq,
                                });
                                st.next_seq += 1;
                                Reply::Sent
                            }
                        }
                        Call::Recv => {
                            let env = st.mailboxes[rank]
                                .pop_front()
                                .expect("sim: recv serviced with empty mailbox");
                            Reply::Msg(env)
                        }
                        Call::TryRecv => match st.mailboxes[rank].pop_front() {
                            Some(env) => Reply::Msg(env),
                            None => Reply::NoMsg,
                        },
                        Call::Finished => unreachable!("sim: Finished is never serviceable"),
                    };
                    st.running += 1;
                    if reply_txs[rank].send(reply).is_err() {
                        // Worker died between parking and service — only
                        // possible if its thread was killed externally.
                        panic!("sim: worker {rank} vanished while parked");
                    }
                }
            }
        }
    });

    // All threads joined. Propagate the first *root-cause* panic (by
    // rank) if any: workers unwound by scheduler teardown carry the
    // internal "sim scheduler terminated" sentinel and are secondary.
    let is_teardown = |p: &Box<dyn Any + Send>| {
        p.downcast_ref::<&str>()
            .is_some_and(|s| *s == "sim scheduler terminated")
    };
    let mut out = Vec::with_capacity(n_procs);
    let mut root_cause: Option<Box<dyn Any + Send>> = None;
    let mut teardown: Option<Box<dyn Any + Send>> = None;
    for slot in results {
        match slot.into_inner().unwrap() {
            Some(Ok(r)) => out.push(r),
            Some(Err(p)) => {
                if is_teardown(&p) {
                    teardown.get_or_insert(p);
                } else {
                    root_cause.get_or_insert(p);
                }
            }
            None => {
                root_cause.get_or_insert(Box::new(
                    "sim: worker exited without recording a result".to_string(),
                ));
            }
        }
    }
    if let Some(p) = root_cause.or(teardown) {
        std::panic::resume_unwind(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TaggedMailbox;

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ring_pass_many_seeds() {
        for seed in 0..50 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<usize, usize, _>(4, &plan, |ctx| {
                let next = (ctx.rank() + 1) % ctx.n_procs();
                ctx.send(next, ctx.rank() * 10);
                ctx.recv().msg
            });
            assert_eq!(results, vec![30, 0, 10, 20], "seed {seed}");
        }
    }

    #[test]
    fn interleaving_is_reproducible() {
        // The arrival order at rank 0 is seed-dependent but identical
        // across replays of the same seed.
        let observe = |seed: u64| {
            let plan = FaultPlan::interleave_only(seed);
            run_sim_spmd::<u32, Vec<u32>, _>(4, &plan, |ctx| {
                if ctx.rank() == 0 {
                    (0..6).map(|_| ctx.recv().msg).collect()
                } else {
                    ctx.send(0, ctx.rank() as u32 * 100);
                    ctx.send(0, ctx.rank() as u32 * 100 + 1);
                    vec![]
                }
            })
        };
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..30 {
            let a = observe(seed);
            let b = observe(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            distinct.insert(a[0].clone());
        }
        // Sanity: chaos really does vary the interleaving across seeds.
        assert!(
            distinct.len() > 3,
            "expected many distinct arrival orders, got {}",
            distinct.len()
        );
    }

    #[test]
    fn collectives_under_chaos() {
        use crate::collective::{CollMsg, Collectives};
        for seed in 0..20 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<CollMsg<u64>, u64, _>(5, &plan, |ctx| {
                let mut coll = Collectives::new();
                coll.barrier(&ctx, 0, 0);
                let root_val = coll.broadcast(&ctx, 1, 0, (ctx.rank() == 0).then_some(7u64));
                coll.all_reduce(&ctx, 2, ctx.rank() as u64 + 1, |a, b| a + b) + root_val
            });
            assert_eq!(results, vec![22; 5], "seed {seed}");
        }
    }

    #[test]
    fn collectives_survive_lossy_faults_under_every_policy() {
        use crate::collective::{CollMsg, Collectives};
        let policies = [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(1),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ];
        for policy in policies {
            for seed in 0..10 {
                let plan = FaultPlan::builder(seed)
                    .drop_lossy(0.3)
                    .duplicate_lossy(0.3)
                    .policy(policy)
                    .build();
                let results = run_sim_spmd::<CollMsg<u64>, u64, _>(4, &plan, |ctx| {
                    let mut coll = Collectives::new();
                    coll.barrier(&ctx, 0, 0);
                    let b = coll.broadcast(&ctx, 1, 2, (ctx.rank() == 2).then_some(100u64));
                    coll.all_reduce(&ctx, 2, ctx.rank() as u64, |a, b| a + b) + b
                });
                assert_eq!(results, vec![106; 4], "seed {seed} policy {policy:?}");
            }
        }
    }

    #[test]
    fn drop_lossy_always_drops_at_p1() {
        let plan = FaultPlan::with_drops(3, 1.0);
        let results = run_sim_spmd::<u8, bool, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                !ctx.send_lossy(1, 9) // must report the drop
            } else {
                ctx.try_recv().is_none() // and nothing may arrive
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn duplicate_lossy_delivers_twice() {
        let plan = FaultPlan::with_duplicates(11, 1.0);
        let results = run_sim_spmd::<u8, usize, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                assert!(ctx.send_lossy(1, 9));
                0
            } else {
                let a = ctx.recv();
                let b = ctx.recv();
                assert_eq!((a.from, a.msg), (0, 9));
                assert_eq!((b.from, b.msg), (0, 9));
                2
            }
        });
        assert_eq!(results[1], 2);
    }

    #[test]
    fn reliable_send_never_dropped_or_duplicated() {
        // Non-lossy sends must be exactly-once even at fault probability 1.
        let plan = FaultPlan::builder(5)
            .drop_lossy(1.0)
            .duplicate_lossy(1.0)
            .build();
        let results = run_sim_spmd::<u32, usize, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10 {
                    ctx.send(1, i);
                }
                0
            } else {
                let got: Vec<u32> = (0..10).map(|_| ctx.recv().msg).collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..10).collect::<Vec<_>>());
                assert!(ctx.try_recv().is_none(), "duplicate on reliable channel");
                got.len()
            }
        });
        assert_eq!(results[1], 10);
    }

    #[test]
    fn send_lossy_false_after_peer_done() {
        let plan = FaultPlan::interleave_only(1);
        let results = run_sim_spmd::<u8, bool, _>(2, &plan, |ctx| {
            if ctx.rank() == 1 {
                return true;
            }
            // Rank 1 performs no comm calls: it finishes as soon as the
            // scheduler hears from it. Keep lossy-sending until then.
            loop {
                if !ctx.send_lossy(1, 1) {
                    return true;
                }
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn deadlock_is_detected_with_seed() {
        let caught = std::panic::catch_unwind(|| {
            let plan = FaultPlan::interleave_only(77);
            run_sim_spmd::<u8, (), _>(2, &plan, |ctx| {
                // Both ranks wait forever.
                let _ = ctx.recv();
            });
        });
        let payload = caught.expect_err("must deadlock");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("sim deadlock (seed 77, policy Uniform)"),
            "got: {msg:?}"
        );
        assert!(msg.contains("blocked in recv"), "got: {msg:?}");
    }

    #[test]
    fn deadlock_dump_names_adversarial_policy() {
        let caught = std::panic::catch_unwind(|| {
            let plan = FaultPlan::builder(9)
                .policy(SchedPolicy::StarveRank(1))
                .build();
            run_sim_spmd::<u8, (), _>(2, &plan, |ctx| {
                let _ = ctx.recv();
            });
        });
        let msg = caught
            .expect_err("must deadlock")
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("sim deadlock (seed 9, policy StarveRank(1))"),
            "got: {msg:?}"
        );
    }

    #[test]
    fn worker_panic_propagates_after_unwind() {
        let caught = std::panic::catch_unwind(|| {
            let plan = FaultPlan::interleave_only(13);
            run_sim_spmd::<u8, (), _>(3, &plan, |ctx| {
                if ctx.rank() == 1 {
                    panic!("injected chaos panic");
                }
                // Others block forever: the runtime must still unwind them.
                let _ = ctx.recv();
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected chaos panic"), "got: {msg:?}");
    }

    #[test]
    fn tagged_mailbox_under_max_reorder() {
        // Exactly-once, key-correct delivery through the pool under heavy
        // reordering across many seeds.
        for seed in 0..40 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<(u32, u32), u64, _>(3, &plan, |ctx| {
                if ctx.rank() != 0 {
                    for tag in 0..5u32 {
                        ctx.send(0, (tag, ctx.rank() as u32 * 1000 + tag));
                    }
                    return 0;
                }
                let mut mb = TaggedMailbox::<(usize, u32), (u32, u32)>::new();
                let mut sum = 0u64;
                // Demand (sender, tag) pairs in a fixed order the senders
                // do not follow.
                for tag in (0..5u32).rev() {
                    for q in 1..3usize {
                        let env = mb.recv_key(&ctx, &(q, tag), |m| {
                            // classify() cannot see the envelope sender, so
                            // the payload carries it.
                            ((m.1 / 1000) as usize, m.0)
                        });
                        assert_eq!(env.from, q);
                        sum += env.msg.1 as u64;
                    }
                }
                assert_eq!(mb.buffered(), 0, "pool must drain exactly");
                sum
            });
            let expect: u64 = (1..3u64).map(|q| (0..5).map(|t| q * 1000 + t).sum::<u64>()).sum();
            assert_eq!(results[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn fifo_per_pair_delivers_in_send_order() {
        // Under FifoPerPair every (sender, receiver) pair is a FIFO
        // channel: the per-sender subsequence at rank 0 must match send
        // order for every seed, even though senders interleave freely.
        for seed in 0..25 {
            let plan = FaultPlan::builder(seed)
                .policy(SchedPolicy::FifoPerPair)
                .build();
            let results = run_sim_spmd::<u32, Vec<(usize, u32)>, _>(3, &plan, |ctx| {
                if ctx.rank() == 0 {
                    (0..10).map(|_| ctx.recv()).map(|e| (e.from, e.msg)).collect()
                } else {
                    for i in 0..5u32 {
                        ctx.send(0, i);
                    }
                    vec![]
                }
            });
            for sender in 1..3 {
                let per_sender: Vec<u32> = results[0]
                    .iter()
                    .filter(|(f, _)| *f == sender)
                    .map(|(_, m)| *m)
                    .collect();
                assert_eq!(per_sender, vec![0, 1, 2, 3, 4], "seed {seed} sender {sender}");
            }
        }
    }

    #[test]
    fn uniform_policy_does_reorder_per_pair() {
        // Control for the FifoPerPair test: uniform sampling must produce
        // at least one out-of-order per-pair delivery across these seeds,
        // otherwise the "nice network" policy is indistinguishable.
        let mut reordered = false;
        for seed in 0..25 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<u32, Vec<u32>, _>(2, &plan, |ctx| {
                if ctx.rank() == 0 {
                    (0..8).map(|_| ctx.recv().msg).collect()
                } else {
                    for i in 0..8u32 {
                        ctx.send(0, i);
                    }
                    vec![]
                }
            });
            if results[0].windows(2).any(|w| w[0] > w[1]) {
                reordered = true;
                break;
            }
        }
        assert!(reordered, "uniform policy never reordered a pair in 25 seeds");
    }

    #[test]
    fn starve_rank_defers_victim_progress() {
        // Rank 1 (the victim) lossy-sends to rank 0 while rank 2 floods
        // rank 0 with reliable traffic. Under StarveRank(1) the victim's
        // message must arrive after all of rank 2's, because rank 1 is
        // only serviced when nothing else can run.
        for seed in 0..25 {
            let plan = FaultPlan::builder(seed)
                .policy(SchedPolicy::StarveRank(1))
                .build();
            let results = run_sim_spmd::<u32, Vec<usize>, _>(3, &plan, |ctx| {
                match ctx.rank() {
                    0 => (0..7).map(|_| ctx.recv().from).collect(),
                    1 => {
                        ctx.send(0, 999);
                        vec![]
                    }
                    _ => {
                        for i in 0..6u32 {
                            ctx.send(0, i);
                        }
                        vec![]
                    }
                }
            });
            let pos_victim = results[0].iter().position(|&f| f == 1).unwrap();
            assert_eq!(
                pos_victim, 6,
                "seed {seed}: victim serviced before the starver drained: {:?}",
                results[0]
            );
        }
    }

    #[test]
    fn every_policy_is_deterministic_and_agrees_on_results() {
        // Same (seed, policy) → identical observable run; and policies
        // never change the *converged values* of a correct protocol.
        let run = |plan: FaultPlan| {
            run_sim_spmd::<u64, u64, _>(4, &plan, |ctx| {
                let next = (ctx.rank() + 1) % ctx.n_procs();
                ctx.send(next, ctx.rank() as u64 * 3);
                ctx.recv().msg
            })
        };
        let policies = [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(2),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ];
        for seed in 0..10 {
            let baseline = run(FaultPlan::builder(seed).build());
            for policy in policies {
                let plan = FaultPlan::builder(seed).policy(policy).build();
                assert_eq!(run(plan), run(plan), "seed {seed} policy {policy:?} replay");
                assert_eq!(run(plan), baseline, "seed {seed} policy {policy:?} values");
            }
        }
    }

    #[test]
    fn single_proc_sim() {
        let plan = FaultPlan::interleave_only(0);
        let results = run_sim_spmd::<(), usize, _>(1, &plan, |ctx| ctx.n_procs());
        assert_eq!(results, vec![1]);
    }
}
