//! Deterministic simulation backend with fault injection.
//!
//! [`run_sim_spmd`] executes the same SPMD closures as [`run_spmd`], but
//! every interleaving decision — which processor runs next, when each
//! in-flight message is delivered, whether a lossy send is dropped or
//! duplicated — is made by a central scheduler driven by a seeded RNG.
//! Re-running with the same [`FaultPlan`] replays the exact execution,
//! which turns "flaky under concurrency" into "reproducible from a seed".
//!
//! ## How determinism is achieved with real threads
//!
//! Each logical processor still runs on its own OS thread (so the solver
//! code is byte-for-byte the production code), but the threads are fully
//! *serialized*: every [`Comm`] call parks the worker on a rendezvous
//! channel and hands control to the scheduler. The scheduler only makes a
//! choice when **all** live workers are parked, so the OS thread scheduler
//! has no influence on the outcome — the only nondeterminism source is
//! the seeded [`SimRng`].
//!
//! ## Faults
//!
//! - **Reordering / delay** are inherent: the scheduler picks uniformly
//!   among all enabled actions, so a message can sit in flight while an
//!   arbitrary amount of other progress happens.
//! - **Lossy drops**: each [`Comm::send_lossy`] is dropped with
//!   probability [`FaultPlan::drop_lossy`] (the call returns `false`,
//!   exactly as if the peer had exited).
//! - **Duplicated delivery**: each lossy-sent message is delivered twice
//!   with probability [`FaultPlan::duplicate_lossy`] — modeling an
//!   at-least-once transport. Only `send_lossy` traffic is duplicated;
//!   plain `send` models the reliable exactly-once channel.
//! - **Crashes**: a worker panic is caught, all other workers are
//!   unwound, and the original panic is re-raised on the caller with the
//!   seed in hand (solver-level fault points — injected zero pivots,
//!   panic-at-task — live in `pastix-solver`'s chaos options).
//!
//! Deadlocks (every live worker blocked in `recv` with nothing in
//! flight) are detected and reported with a per-rank state dump and the
//! seed that produced them.

use crate::{Comm, Envelope};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

/// SplitMix64: small, fast, and plenty for schedule shuffling.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates an RNG from a seed; distinct seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli draw with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Seed plus fault probabilities for one simulated execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed for the interleaving RNG; same plan → same execution.
    pub seed: u64,
    /// Probability that a `send_lossy` is silently dropped (returns
    /// `false` to the sender).
    pub drop_lossy: f64,
    /// Probability that a lossy-sent message is delivered twice.
    pub duplicate_lossy: f64,
}

impl FaultPlan {
    /// Pure interleaving chaos: random scheduling and delivery order, but
    /// no drops or duplicates.
    pub fn interleave_only(seed: u64) -> Self {
        Self {
            seed,
            drop_lossy: 0.0,
            duplicate_lossy: 0.0,
        }
    }

    /// Interleaving chaos plus the given lossy-drop probability.
    pub fn with_drops(seed: u64, drop_lossy: f64) -> Self {
        Self {
            seed,
            drop_lossy,
            duplicate_lossy: 0.0,
        }
    }

    /// Interleaving chaos plus duplicate delivery of lossy traffic.
    pub fn with_duplicates(seed: u64, duplicate_lossy: f64) -> Self {
        Self {
            seed,
            drop_lossy: 0.0,
            duplicate_lossy,
        }
    }
}

/// A worker's parked request, waiting for the scheduler.
enum Call<M> {
    Send { to: usize, msg: M, lossy: bool },
    Recv,
    TryRecv,
    /// The worker's closure returned (or panicked); it will make no more
    /// calls.
    Finished,
}

enum Reply<M> {
    /// Send accepted (lossy flag result for `send_lossy`).
    Sent(bool),
    /// The peer exited: a non-lossy send must panic on the sender.
    PeerClosed { to: usize },
    Msg(Envelope<M>),
    NoMsg,
}

/// Per-processor context of the simulation backend; implements [`Comm`].
pub struct SimCtx<M> {
    rank: usize,
    n_procs: usize,
    call_tx: Sender<(usize, Call<M>)>,
    reply_rx: Receiver<Reply<M>>,
}

impl<M> SimCtx<M> {
    fn rendezvous(&self, call: Call<M>) -> Reply<M> {
        if self.call_tx.send((self.rank, call)).is_err() {
            // The scheduler died (deadlock panic unwinding run_sim_spmd):
            // unwind this worker quietly; the scheduler's panic is the one
            // that reaches the user.
            panic!("sim scheduler terminated");
        }
        match self.reply_rx.recv() {
            Ok(r) => r,
            Err(_) => panic!("sim scheduler terminated"),
        }
    }
}

impl<M: Send> Comm<M> for SimCtx<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn n_procs(&self) -> usize {
        self.n_procs
    }

    fn send(&self, to: usize, msg: M) {
        match self.rendezvous(Call::Send {
            to,
            msg,
            lossy: false,
        }) {
            Reply::Sent(_) => {}
            Reply::PeerClosed { to } => panic!(
                "rank {} send to rank {}: peer mailbox closed (peer exited before this message)",
                self.rank, to
            ),
            _ => unreachable!("sim: bad reply to send"),
        }
    }

    fn send_lossy(&self, to: usize, msg: M) -> bool {
        match self.rendezvous(Call::Send {
            to,
            msg,
            lossy: true,
        }) {
            Reply::Sent(delivered) => delivered,
            Reply::PeerClosed { .. } => false,
            _ => unreachable!("sim: bad reply to send_lossy"),
        }
    }

    fn recv(&self) -> Envelope<M> {
        match self.rendezvous(Call::Recv) {
            Reply::Msg(env) => env,
            Reply::PeerClosed { .. } => panic!(
                "rank {} recv: all peers exited while still waiting for a message",
                self.rank
            ),
            _ => unreachable!("sim: bad reply to recv"),
        }
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        match self.rendezvous(Call::TryRecv) {
            Reply::Msg(env) => Some(env),
            Reply::NoMsg => None,
            _ => unreachable!("sim: bad reply to try_recv"),
        }
    }
}

impl<M: Send> SimCtx<M> {
    /// This processor's rank (inherent mirror of [`Comm::rank`], so
    /// closures taking `SimCtx` by value don't need the trait in scope).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of logical processors.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// See [`Comm::send`].
    pub fn send(&self, to: usize, msg: M) {
        Comm::send(self, to, msg)
    }

    /// See [`Comm::send_lossy`].
    pub fn send_lossy(&self, to: usize, msg: M) -> bool {
        Comm::send_lossy(self, to, msg)
    }

    /// See [`Comm::recv`].
    pub fn recv(&self) -> Envelope<M> {
        Comm::recv(self)
    }

    /// See [`Comm::try_recv`].
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        Comm::try_recv(self)
    }
}

/// An in-flight message: sent, not yet delivered to its mailbox.
struct InFlight<M> {
    to: usize,
    env: Envelope<M>,
    lossy: bool,
}

enum WorkerState<M> {
    /// Executing user code between comm calls.
    Running,
    /// Parked on a comm call, waiting for the scheduler.
    Parked(Call<M>),
    /// Closure returned or panicked.
    Done,
}

struct SchedulerState<M> {
    plan: FaultPlan,
    rng: SimRng,
    states: Vec<WorkerState<M>>,
    mailboxes: Vec<std::collections::VecDeque<Envelope<M>>>,
    net: Vec<InFlight<M>>,
    running: usize,
    live: usize,
    steps: u64,
}

enum Action {
    /// Service rank's parked call.
    Service(usize),
    /// Deliver net[i] to its mailbox.
    Deliver(usize),
}

impl<M: Clone> SchedulerState<M> {
    fn describe(&self) -> String {
        let mut s = String::new();
        for (r, st) in self.states.iter().enumerate() {
            let what = match st {
                WorkerState::Running => "running".to_string(),
                WorkerState::Parked(Call::Recv) => {
                    format!("blocked in recv (mailbox: {})", self.mailboxes[r].len())
                }
                WorkerState::Parked(Call::Send { to, lossy, .. }) => {
                    format!("parked in send(to={to}, lossy={lossy})")
                }
                WorkerState::Parked(Call::TryRecv) => "parked in try_recv".to_string(),
                WorkerState::Parked(Call::Finished) | WorkerState::Done => "finished".to_string(),
            };
            s.push_str(&format!("  rank {r}: {what}\n"));
        }
        s.push_str(&format!(
            "  in-flight messages: {}, steps executed: {}",
            self.net.len(),
            self.steps
        ));
        s
    }

    fn enabled_actions(&self) -> Vec<Action> {
        let mut acts = Vec::new();
        for (r, st) in self.states.iter().enumerate() {
            if let WorkerState::Parked(call) = st {
                let serviceable = match call {
                    Call::Recv => !self.mailboxes[r].is_empty(),
                    Call::Send { .. } | Call::TryRecv => true,
                    Call::Finished => false,
                };
                if serviceable {
                    acts.push(Action::Service(r));
                }
            }
        }
        for i in 0..self.net.len() {
            acts.push(Action::Deliver(i));
        }
        acts
    }
}

/// Runs `n_procs` logical processors under the deterministic simulator
/// with the given fault plan; returns results in rank order.
///
/// Semantics match [`run_spmd`] (same `Comm` contract, same panic
/// behavior: a worker panic propagates to the caller after every other
/// worker has unwound), but the interleaving is a pure function of
/// `plan`. A protocol deadlock — every live worker blocked in `recv`
/// with an empty network — panics with a per-rank state dump naming
/// `plan.seed`.
///
/// `M: Clone` is required so the duplicate-delivery fault can replicate a
/// message; with `duplicate_lossy == 0.0` no clone ever happens.
///
/// ```
/// use pastix_runtime::sim::{run_sim_spmd, FaultPlan};
/// let plan = FaultPlan::interleave_only(42);
/// let out = run_sim_spmd::<usize, usize, _>(3, &plan, |ctx| {
///     if ctx.rank() == 0 {
///         (1..ctx.n_procs()).map(|_| ctx.recv().msg).sum()
///     } else {
///         ctx.send(0, ctx.rank());
///         0
///     }
/// });
/// assert_eq!(out[0], 3);
/// ```
pub fn run_sim_spmd<M, R, F>(n_procs: usize, plan: &FaultPlan, f: F) -> Vec<R>
where
    M: Send + Clone,
    R: Send,
    F: Fn(SimCtx<M>) -> R + Sync,
{
    assert!(n_procs >= 1);
    let (call_tx, call_rx) = channel::<(usize, Call<M>)>();
    let mut reply_txs: Vec<Sender<Reply<M>>> = Vec::with_capacity(n_procs);
    let mut contexts: Vec<SimCtx<M>> = Vec::with_capacity(n_procs);
    for rank in 0..n_procs {
        let (tx, rx) = channel();
        reply_txs.push(tx);
        contexts.push(SimCtx {
            rank,
            n_procs,
            call_tx: call_tx.clone(),
            reply_rx: rx,
        });
    }
    drop(call_tx);

    type Slot<R> = Mutex<Option<Result<R, Box<dyn Any + Send>>>>;
    let results: Vec<Slot<R>> = (0..n_procs).map(|_| Mutex::new(None)).collect();
    let f = &f;

    std::thread::scope(|scope| {
        // Owned by this closure: dropping the reply senders (normal exit,
        // early return on a detected worker panic, or deadlock unwind) is
        // what unparks any still-blocked workers so the scope can join.
        let reply_txs = reply_txs;
        for ctx in contexts {
            let rank = ctx.rank;
            let finish_tx = ctx.call_tx.clone();
            let slot = &results[rank];
            scope.spawn(move || {
                let out = catch_unwind(AssertUnwindSafe(|| f(ctx)));
                *slot.lock().unwrap() = Some(out);
                // Best-effort: the scheduler may already be gone.
                let _ = finish_tx.send((rank, Call::Finished));
            });
        }

        let mut st = SchedulerState::<M> {
            plan: *plan,
            rng: SimRng::new(plan.seed),
            states: (0..n_procs).map(|_| WorkerState::Running).collect(),
            mailboxes: (0..n_procs)
                .map(|_| std::collections::VecDeque::new())
                .collect(),
            net: Vec::new(),
            running: n_procs,
            live: n_procs,
            steps: 0,
        };

        loop {
            // Phase 1: wait until every live worker is parked (or done), so
            // the OS thread scheduler cannot influence the choice below.
            while st.running > 0 {
                let (rank, call) = call_rx
                    .recv()
                    .expect("sim: all workers vanished without finishing");
                st.running -= 1;
                match call {
                    Call::Finished => {
                        st.states[rank] = WorkerState::Done;
                        st.live -= 1;
                        // Undelivered traffic to a dead worker can never be
                        // observed; drop it so it doesn't count as progress.
                        st.net.retain(|m| m.to != rank);
                    }
                    call => st.states[rank] = WorkerState::Parked(call),
                }
            }

            if st.live == 0 {
                break;
            }

            // Phase 2: pick one enabled action with the seeded RNG.
            let actions = st.enabled_actions();
            if actions.is_empty() {
                // Every live worker is blocked in recv and nothing is in
                // flight. If a worker panicked, that is the root cause:
                // re-raise it instead of reporting a secondary deadlock.
                for slot in &results {
                    if let Some(Err(_)) = &*slot.lock().unwrap() {
                        // Dropping the scheduler (reply senders) unparks the
                        // blocked workers; propagate after scope join below.
                        return;
                    }
                }
                panic!(
                    "sim deadlock (seed {}): every live worker is blocked and the network is empty\n{}",
                    st.plan.seed,
                    st.describe()
                );
            }
            st.steps += 1;
            let pick = st.rng.below(actions.len());
            match actions[pick] {
                Action::Deliver(i) => {
                    let m = st.net.remove(i);
                    if m.lossy && st.rng.chance(st.plan.duplicate_lossy) {
                        st.mailboxes[m.to].push_back(m.env.clone());
                    }
                    st.mailboxes[m.to].push_back(m.env);
                }
                Action::Service(rank) => {
                    let call =
                        std::mem::replace(&mut st.states[rank], WorkerState::Running);
                    let WorkerState::Parked(call) = call else {
                        unreachable!("sim: serviced a non-parked worker")
                    };
                    let reply = match call {
                        Call::Send { to, msg, lossy } => {
                            if matches!(st.states[to], WorkerState::Done) {
                                Reply::PeerClosed { to }
                            } else if lossy && st.rng.chance(st.plan.drop_lossy) {
                                Reply::Sent(false)
                            } else {
                                st.net.push(InFlight {
                                    to,
                                    env: Envelope { from: rank, msg },
                                    lossy,
                                });
                                Reply::Sent(true)
                            }
                        }
                        Call::Recv => {
                            let env = st.mailboxes[rank]
                                .pop_front()
                                .expect("sim: recv serviced with empty mailbox");
                            Reply::Msg(env)
                        }
                        Call::TryRecv => match st.mailboxes[rank].pop_front() {
                            Some(env) => Reply::Msg(env),
                            None => Reply::NoMsg,
                        },
                        Call::Finished => unreachable!("sim: Finished is never serviceable"),
                    };
                    st.running += 1;
                    if reply_txs[rank].send(reply).is_err() {
                        // Worker died between parking and service — only
                        // possible if its thread was killed externally.
                        panic!("sim: worker {rank} vanished while parked");
                    }
                }
            }
        }
    });

    // All threads joined. Propagate the first *root-cause* panic (by
    // rank) if any: workers unwound by scheduler teardown carry the
    // internal "sim scheduler terminated" sentinel and are secondary.
    let is_teardown = |p: &Box<dyn Any + Send>| {
        p.downcast_ref::<&str>()
            .is_some_and(|s| *s == "sim scheduler terminated")
    };
    let mut out = Vec::with_capacity(n_procs);
    let mut root_cause: Option<Box<dyn Any + Send>> = None;
    let mut teardown: Option<Box<dyn Any + Send>> = None;
    for slot in results {
        match slot.into_inner().unwrap() {
            Some(Ok(r)) => out.push(r),
            Some(Err(p)) => {
                if is_teardown(&p) {
                    teardown.get_or_insert(p);
                } else {
                    root_cause.get_or_insert(p);
                }
            }
            None => {
                root_cause.get_or_insert(Box::new(
                    "sim: worker exited without recording a result".to_string(),
                ));
            }
        }
    }
    if let Some(p) = root_cause.or(teardown) {
        std::panic::resume_unwind(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collective, TaggedMailbox};

    #[test]
    fn rng_is_deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ring_pass_many_seeds() {
        for seed in 0..50 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<usize, usize, _>(4, &plan, |ctx| {
                let next = (ctx.rank() + 1) % ctx.n_procs();
                ctx.send(next, ctx.rank() * 10);
                ctx.recv().msg
            });
            assert_eq!(results, vec![30, 0, 10, 20], "seed {seed}");
        }
    }

    #[test]
    fn interleaving_is_reproducible() {
        // The arrival order at rank 0 is seed-dependent but identical
        // across replays of the same seed.
        let observe = |seed: u64| {
            let plan = FaultPlan::interleave_only(seed);
            run_sim_spmd::<u32, Vec<u32>, _>(4, &plan, |ctx| {
                if ctx.rank() == 0 {
                    (0..6).map(|_| ctx.recv().msg).collect()
                } else {
                    ctx.send(0, ctx.rank() as u32 * 100);
                    ctx.send(0, ctx.rank() as u32 * 100 + 1);
                    vec![]
                }
            })
        };
        let mut distinct = std::collections::HashSet::new();
        for seed in 0..30 {
            let a = observe(seed);
            let b = observe(seed);
            assert_eq!(a, b, "seed {seed} not reproducible");
            distinct.insert(a[0].clone());
        }
        // Sanity: chaos really does vary the interleaving across seeds.
        assert!(
            distinct.len() > 3,
            "expected many distinct arrival orders, got {}",
            distinct.len()
        );
    }

    #[test]
    fn collectives_under_chaos() {
        for seed in 0..20 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<u64, u64, _>(5, &plan, |ctx| {
                collective::barrier(&ctx, 0);
                collective::all_reduce(&ctx, ctx.rank() as u64 + 1, |a, b| a + b)
            });
            assert_eq!(results, vec![15; 5], "seed {seed}");
        }
    }

    #[test]
    fn drop_lossy_always_drops_at_p1() {
        let plan = FaultPlan::with_drops(3, 1.0);
        let results = run_sim_spmd::<u8, bool, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                !ctx.send_lossy(1, 9) // must report the drop
            } else {
                ctx.try_recv().is_none() // and nothing may arrive
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn duplicate_lossy_delivers_twice() {
        let plan = FaultPlan::with_duplicates(11, 1.0);
        let results = run_sim_spmd::<u8, usize, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                assert!(ctx.send_lossy(1, 9));
                0
            } else {
                let a = ctx.recv();
                let b = ctx.recv();
                assert_eq!((a.from, a.msg), (0, 9));
                assert_eq!((b.from, b.msg), (0, 9));
                2
            }
        });
        assert_eq!(results[1], 2);
    }

    #[test]
    fn reliable_send_never_dropped_or_duplicated() {
        // Non-lossy sends must be exactly-once even at fault probability 1.
        let plan = FaultPlan {
            seed: 5,
            drop_lossy: 1.0,
            duplicate_lossy: 1.0,
        };
        let results = run_sim_spmd::<u32, usize, _>(2, &plan, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..10 {
                    ctx.send(1, i);
                }
                0
            } else {
                let got: Vec<u32> = (0..10).map(|_| ctx.recv().msg).collect();
                let mut sorted = got.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..10).collect::<Vec<_>>());
                assert!(ctx.try_recv().is_none(), "duplicate on reliable channel");
                got.len()
            }
        });
        assert_eq!(results[1], 10);
    }

    #[test]
    fn send_lossy_false_after_peer_done() {
        let plan = FaultPlan::interleave_only(1);
        let results = run_sim_spmd::<u8, bool, _>(2, &plan, |ctx| {
            if ctx.rank() == 1 {
                return true;
            }
            // Rank 1 performs no comm calls: it finishes as soon as the
            // scheduler hears from it. Keep lossy-sending until then.
            loop {
                if !ctx.send_lossy(1, 1) {
                    return true;
                }
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn deadlock_is_detected_with_seed() {
        let caught = std::panic::catch_unwind(|| {
            let plan = FaultPlan::interleave_only(77);
            run_sim_spmd::<u8, (), _>(2, &plan, |ctx| {
                // Both ranks wait forever.
                let _ = ctx.recv();
            });
        });
        let payload = caught.expect_err("must deadlock");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("sim deadlock (seed 77)"), "got: {msg:?}");
        assert!(msg.contains("blocked in recv"), "got: {msg:?}");
    }

    #[test]
    fn worker_panic_propagates_after_unwind() {
        let caught = std::panic::catch_unwind(|| {
            let plan = FaultPlan::interleave_only(13);
            run_sim_spmd::<u8, (), _>(3, &plan, |ctx| {
                if ctx.rank() == 1 {
                    panic!("injected chaos panic");
                }
                // Others block forever: the runtime must still unwind them.
                let _ = ctx.recv();
            });
        });
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("injected chaos panic"), "got: {msg:?}");
    }

    #[test]
    fn tagged_mailbox_under_max_reorder() {
        // Exactly-once, key-correct delivery through the pool under heavy
        // reordering across many seeds.
        for seed in 0..40 {
            let plan = FaultPlan::interleave_only(seed);
            let results = run_sim_spmd::<(u32, u32), u64, _>(3, &plan, |ctx| {
                if ctx.rank() != 0 {
                    for tag in 0..5u32 {
                        ctx.send(0, (tag, ctx.rank() as u32 * 1000 + tag));
                    }
                    return 0;
                }
                let mut mb = TaggedMailbox::<(usize, u32), (u32, u32)>::new();
                let mut sum = 0u64;
                // Demand (sender, tag) pairs in a fixed order the senders
                // do not follow.
                for tag in (0..5u32).rev() {
                    for q in 1..3usize {
                        let env = mb.recv_key(&ctx, &(q, tag), |m| {
                            // classify() cannot see the envelope sender, so
                            // the payload carries it.
                            ((m.1 / 1000) as usize, m.0)
                        });
                        assert_eq!(env.from, q);
                        sum += env.msg.1 as u64;
                    }
                }
                assert_eq!(mb.buffered(), 0, "pool must drain exactly");
                sum
            });
            let expect: u64 = (1..3u64).map(|q| (0..5).map(|t| q * 1000 + t).sum::<u64>()).sum();
            assert_eq!(results[0], expect, "seed {seed}");
        }
    }

    #[test]
    fn single_proc_sim() {
        let plan = FaultPlan::interleave_only(0);
        let results = run_sim_spmd::<(), usize, _>(1, &plan, |ctx| ctx.n_procs());
        assert_eq!(results, vec![1]);
    }
}
