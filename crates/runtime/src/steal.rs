//! Work-stealing DAG executor: the substrate of `Backend::Dynamic`.
//!
//! Where the thread and sim backends execute an SPMD program whose every
//! step was fixed by the static schedule, this module executes an explicit
//! task DAG with per-task dependency counters. The static mapping — when
//! one is available — supplies only *initial placement* (which worker's
//! queue a root task is seeded on) and *priority* (which ready task a
//! worker prefers); everything else is decided at run time by per-worker
//! priority queues with steal-half balancing.
//!
//! Two execution modes share the same task-body code:
//!
//! - **Threaded** (default): one OS thread per worker, atomic dependency
//!   counters, mutex-protected per-worker heaps, and steal-half when a
//!   worker's own queue runs dry.
//! - **Simulated** (`sim: Some(plan)`): a single-threaded serialization
//!   where a seeded RNG picks which worker runs next, filtered through the
//!   same adversarial [`SchedPolicy`](crate::sim::SchedPolicy) vocabulary
//!   as the message simulator. Every execution is a pure function of
//!   `(seed, policy)`, which is what the chaos suite replays.

use crate::sim::{FaultPlan, SchedPolicy, SimRng};
use std::any::Any;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options of the dynamic work-stealing backend.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DynamicOptions {
    /// Worker thread count; 0 (default) means "auto": the static
    /// schedule's processor count when a schedule is present, else 4.
    pub workers: usize,
    /// When `true`, ready queues order tasks by the priority hints derived
    /// from the static schedule (or the elimination-tree depth when no
    /// schedule exists); when `false`, queues degrade to FIFO order.
    pub priorities: bool,
    /// `Some(plan)` serializes the whole execution under the seeded
    /// deterministic scheduler (single thread, adversarial policies) —
    /// the dynamic twin of [`crate::Backend::Sim`].
    pub sim: Option<FaultPlan>,
}

impl DynamicOptions {
    /// Default options: auto worker count, no priority hints, threaded.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 = auto).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Enables or disables priority-hint ordering of the ready queues.
    pub fn with_priorities(mut self, on: bool) -> Self {
        self.priorities = on;
        self
    }

    /// Runs the executor under the seeded deterministic serializer.
    pub fn with_sim(mut self, plan: FaultPlan) -> Self {
        self.sim = Some(plan);
        self
    }
}

/// Borrowed description of the task DAG: dependency counts, successor CSR,
/// per-task priority, and initial placement. All slices are indexed by
/// task id; `out_ptr` has `n_tasks + 1` entries.
#[derive(Debug, Clone, Copy)]
pub struct DagSpec<'a> {
    /// Initial dependency count per task (number of distinct producers).
    pub deps: &'a [u32],
    /// CSR row pointers into `out_dst`.
    pub out_ptr: &'a [u32],
    /// Successor task ids.
    pub out_dst: &'a [u32],
    /// Priority per task; higher runs first (all-zero = FIFO).
    pub priority: &'a [u64],
    /// Preferred worker per task (used only to seed dependency-free roots;
    /// taken modulo the worker count).
    pub placement: &'a [u32],
}

/// Execution context handed to the task body alongside the task id.
#[derive(Debug, Clone, Copy)]
pub struct TaskCtx {
    /// Worker executing the task.
    pub worker: usize,
    /// How many tasks this worker had executed before this one.
    pub local_index: usize,
    /// Ready-queue depth of the executing worker right after the pop —
    /// the sampled [`ready-queue gauge`](crate::Backend::Dynamic) signal.
    pub ready_depth: usize,
    /// `true` when the task was stolen from another worker's queue.
    pub stolen: bool,
}

/// Counters of one [`run_dag`] execution.
#[derive(Debug, Clone, Default)]
pub struct StealStats {
    /// Tasks executed per worker.
    pub executed: Vec<u64>,
    /// Tasks moved between queues by steal-half (0 under sim).
    pub steals: u64,
    /// `true` when a task body requested abort (returned `false`).
    pub aborted: bool,
}

/// Ready-queue entry. Ordering: highest priority first, then lowest
/// sequence number (so an all-zero priority vector degrades to FIFO), then
/// lowest task id.
struct Entry {
    prio: u64,
    seq: u64,
    task: u32,
    stolen: bool,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}

impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.prio
            .cmp(&other.prio)
            .then(other.seq.cmp(&self.seq))
            .then(other.task.cmp(&self.task))
    }
}

/// Executes the DAG described by `spec` on `n_workers` workers.
///
/// `body(task, ctx)` runs each task exactly once; returning `false`
/// aborts the execution (remaining tasks are skipped on every worker).
/// A panicking body likewise aborts the run, and the panic is re-raised
/// on the calling thread after every worker has unwound — the same
/// contract as [`crate::run_spmd`].
///
/// `worker_scope(worker, run)` wraps each worker's whole lifetime: it must
/// call `run()` exactly once and may install per-thread state around it
/// (the solver uses it to open a trace session per worker); its return
/// values come back in worker order. Under `sim` the entire serialized
/// execution runs inside `worker_scope(0, ..)` on the calling thread and
/// the result vector has a single element.
pub fn run_dag<R, B, W>(
    spec: &DagSpec<'_>,
    n_workers: usize,
    sim: Option<&FaultPlan>,
    body: &B,
    worker_scope: &W,
) -> (Vec<R>, StealStats)
where
    R: Send,
    B: Fn(u32, &TaskCtx) -> bool + Sync,
    W: Fn(usize, &mut dyn FnMut()) -> R + Sync,
{
    assert!(n_workers >= 1, "run_dag needs at least one worker");
    let n = spec.deps.len();
    debug_assert_eq!(spec.out_ptr.len(), n + 1);
    debug_assert_eq!(spec.priority.len(), n);
    match sim {
        Some(plan) => {
            let mut stats = None;
            let mut serial = || stats = Some(run_serial(spec, n_workers, plan, body));
            let r = worker_scope(0, &mut serial);
            (vec![r], stats.expect("worker_scope must call run()"))
        }
        None => run_threaded(spec, n_workers, body, worker_scope),
    }
}

fn run_threaded<R, B, W>(
    spec: &DagSpec<'_>,
    n_workers: usize,
    body: &B,
    worker_scope: &W,
) -> (Vec<R>, StealStats)
where
    R: Send,
    B: Fn(u32, &TaskCtx) -> bool + Sync,
    W: Fn(usize, &mut dyn FnMut()) -> R + Sync,
{
    let n = spec.deps.len();
    let deps: Vec<AtomicU32> = spec.deps.iter().map(|&d| AtomicU32::new(d)).collect();
    let queues: Vec<Mutex<BinaryHeap<Entry>>> =
        (0..n_workers).map(|_| Mutex::new(BinaryHeap::new())).collect();
    let next_seq = AtomicU64::new(0);
    // Seed dependency-free roots on their statically preferred worker, in
    // task-id order (= the FIFO order when priorities are all zero).
    for t in 0..n {
        if spec.deps[t] == 0 {
            let w = spec
                .placement
                .get(t)
                .map(|&p| p as usize % n_workers)
                .unwrap_or(0);
            queues[w].lock().unwrap().push(Entry {
                prio: spec.priority[t],
                seq: next_seq.fetch_add(1, Ordering::Relaxed),
                task: t as u32,
                stolen: false,
            });
        }
    }
    let remaining = AtomicUsize::new(n);
    let abort = AtomicBool::new(false);
    let steals = AtomicU64::new(0);
    let executed: Vec<AtomicU64> = (0..n_workers).map(|_| AtomicU64::new(0)).collect();
    let panic_slot: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);

    let worker_loop = |w: usize| {
        let mut local_index = 0usize;
        loop {
            if abort.load(Ordering::Acquire) || remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            let popped = {
                let mut q = queues[w].lock().unwrap();
                let e = q.pop();
                let depth = q.len();
                e.map(|e| (e, depth))
            };
            let Some((entry, depth)) = popped else {
                // Own queue dry: steal the higher-priority half of the
                // first non-empty victim queue.
                let mut got = false;
                for off in 1..n_workers {
                    let v = (w + off) % n_workers;
                    let mut batch = Vec::new();
                    {
                        let mut vq = queues[v].lock().unwrap();
                        let take = vq.len().div_ceil(2);
                        for _ in 0..take {
                            if let Some(mut e) = vq.pop() {
                                e.stolen = true;
                                batch.push(e);
                            }
                        }
                    }
                    if !batch.is_empty() {
                        steals.fetch_add(batch.len() as u64, Ordering::Relaxed);
                        let mut q = queues[w].lock().unwrap();
                        for e in batch {
                            q.push(e);
                        }
                        got = true;
                        break;
                    }
                }
                if !got {
                    std::thread::yield_now();
                }
                continue;
            };
            let ctx = TaskCtx {
                worker: w,
                local_index,
                ready_depth: depth,
                stolen: entry.stolen,
            };
            local_index += 1;
            executed[w].fetch_add(1, Ordering::Relaxed);
            match catch_unwind(AssertUnwindSafe(|| body(entry.task, &ctx))) {
                Err(payload) => {
                    let mut slot = panic_slot.lock().unwrap();
                    slot.get_or_insert(payload);
                    abort.store(true, Ordering::Release);
                    return;
                }
                Ok(false) => {
                    abort.store(true, Ordering::Release);
                    return;
                }
                Ok(true) => {}
            }
            let t = entry.task as usize;
            let lo = spec.out_ptr[t] as usize;
            let hi = spec.out_ptr[t + 1] as usize;
            for &d in &spec.out_dst[lo..hi] {
                // AcqRel: the successor's execution must observe every
                // write of every producer; the release half publishes this
                // task's writes, the acquire half (of the last decrement)
                // pulls in the other producers'.
                if deps[d as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    queues[w].lock().unwrap().push(Entry {
                        prio: spec.priority[d as usize],
                        seq: next_seq.fetch_add(1, Ordering::Relaxed),
                        task: d,
                        stolen: false,
                    });
                }
            }
            remaining.fetch_sub(1, Ordering::AcqRel);
        }
    };

    let results: Vec<R> = std::thread::scope(|scope| {
        let worker_loop = &worker_loop;
        let handles: Vec<_> = (0..n_workers)
            .map(|w| scope.spawn(move || worker_scope(w, &mut || worker_loop(w))))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => resume_unwind(payload),
            })
            .collect()
    });
    if let Some(payload) = panic_slot.into_inner().unwrap() {
        resume_unwind(payload);
    }
    let stats = StealStats {
        executed: executed.into_iter().map(|c| c.into_inner()).collect(),
        steals: steals.into_inner(),
        aborted: abort.into_inner(),
    };
    (results, stats)
}

/// The deterministic single-threaded serialization of the executor: the
/// scheduler state is the per-worker ready list, the enabled actions are
/// "worker w executes one of its ready tasks", and the plan's policy
/// filters them exactly like the message simulator filters its actions —
/// with the same liveness fallback (an empty filtered set restores the
/// full set). Priority hints are deliberately ignored here: the point of
/// the sim mode is to explore *adversarial* orders, not preferred ones.
fn run_serial<B>(spec: &DagSpec<'_>, n_workers: usize, plan: &FaultPlan, body: &B) -> StealStats
where
    B: Fn(u32, &TaskCtx) -> bool + Sync,
{
    let n = spec.deps.len();
    let mut deps: Vec<u32> = spec.deps.to_vec();
    let mut ready: Vec<Vec<Entry>> = (0..n_workers).map(|_| Vec::new()).collect();
    let mut next_seq = 0u64;
    for t in 0..n {
        if deps[t] == 0 {
            let w = spec
                .placement
                .get(t)
                .map(|&p| p as usize % n_workers)
                .unwrap_or(0);
            ready[w].push(Entry {
                prio: spec.priority[t],
                seq: next_seq,
                task: t as u32,
                stolen: false,
            });
            next_seq += 1;
        }
    }
    let mut rng = SimRng::new(plan.seed);
    let mut executed = vec![0u64; n_workers];
    let mut local_index = vec![0usize; n_workers];
    let mut remaining = n;
    let mut aborted = false;
    while remaining > 0 && !aborted {
        // Enabled actions: (worker, index into its ready list).
        let acts: Vec<(usize, usize)> = (0..n_workers)
            .flat_map(|w| (0..ready[w].len()).map(move |i| (w, i)))
            .collect();
        assert!(
            !acts.is_empty(),
            "dynamic executor stalled: {remaining} tasks remain but none are ready \
             (cyclic dependencies?) [seed {} policy {:?}]",
            plan.seed,
            plan.policy
        );
        let keep: Vec<(usize, usize)> = match plan.policy {
            SchedPolicy::Uniform => acts.clone(),
            // Never run the starved worker while anyone else has work.
            SchedPolicy::StarveRank(r) => acts.iter().copied().filter(|&(w, _)| w != r).collect(),
            // The oldest ready task is always scheduled last.
            SchedPolicy::DeliverLast => {
                let oldest = acts
                    .iter()
                    .copied()
                    .min_by_key(|&(w, i)| ready[w][i].seq)
                    .expect("acts is non-empty");
                acts.iter().copied().filter(|&a| a != oldest).collect()
            }
            // Each worker executes its queue strictly in arrival order.
            SchedPolicy::FifoPerPair => {
                let mut heads: Vec<(usize, usize)> = Vec::new();
                for w in 0..n_workers {
                    if let Some(i) = (0..ready[w].len()).min_by_key(|&i| ready[w][i].seq) {
                        heads.push((w, i));
                    }
                }
                heads
            }
        };
        // Liveness fallback, as in the message simulator: a policy only
        // filters; an emptied set is restored whole.
        let pick = if keep.is_empty() { &acts } else { &keep };
        let (w, i) = pick[rng.below(pick.len())];
        let entry = ready[w].remove(i);
        let ctx = TaskCtx {
            worker: w,
            local_index: local_index[w],
            ready_depth: ready[w].len(),
            stolen: false,
        };
        local_index[w] += 1;
        executed[w] += 1;
        if !body(entry.task, &ctx) {
            aborted = true;
            break;
        }
        let t = entry.task as usize;
        let lo = spec.out_ptr[t] as usize;
        let hi = spec.out_ptr[t + 1] as usize;
        for &d in &spec.out_dst[lo..hi] {
            deps[d as usize] -= 1;
            if deps[d as usize] == 0 {
                ready[w].push(Entry {
                    prio: spec.priority[d as usize],
                    seq: next_seq,
                    task: d,
                    stolen: false,
                });
                next_seq += 1;
            }
        }
        remaining -= 1;
    }
    StealStats {
        executed,
        steals: 0,
        aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// A simple chain DAG 0 -> 1 -> ... -> n-1.
    fn chain(n: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
        let deps: Vec<u32> = (0..n).map(|t| u32::from(t > 0)).collect();
        let mut out_ptr = vec![0u32; n + 1];
        let mut out_dst = Vec::new();
        for t in 0..n {
            if t + 1 < n {
                out_dst.push((t + 1) as u32);
            }
            out_ptr[t + 1] = out_dst.len() as u32;
        }
        (deps, out_ptr, out_dst)
    }

    #[test]
    fn chain_executes_in_order() {
        let n = 64;
        let (deps, out_ptr, out_dst) = chain(n);
        let prio = vec![0u64; n];
        let place = vec![0u32; n];
        let spec = DagSpec {
            deps: &deps,
            out_ptr: &out_ptr,
            out_dst: &out_dst,
            priority: &prio,
            placement: &place,
        };
        let order = Mutex::new(Vec::new());
        let (_, stats) = run_dag(
            &spec,
            4,
            None,
            &|t, _ctx| {
                order.lock().unwrap().push(t);
                true
            },
            &|_w, run| run(),
        );
        assert_eq!(order.into_inner().unwrap(), (0..n as u32).collect::<Vec<_>>());
        assert_eq!(stats.executed.iter().sum::<u64>(), n as u64);
        assert!(!stats.aborted);
    }

    #[test]
    fn diamond_respects_deps_and_counts_all_tasks() {
        // 0 -> {1, 2} -> 3.
        let deps = vec![0u32, 1, 1, 2];
        let out_ptr = vec![0u32, 2, 3, 4, 4];
        let out_dst = vec![1u32, 2, 3, 3];
        let prio = vec![0u64; 4];
        let place = vec![0u32, 1, 2, 3];
        let spec = DagSpec {
            deps: &deps,
            out_ptr: &out_ptr,
            out_dst: &out_dst,
            priority: &prio,
            placement: &place,
        };
        let done = AtomicU64::new(0);
        let last = AtomicU64::new(u64::MAX);
        let (_, stats) = run_dag(
            &spec,
            3,
            None,
            &|t, _| {
                done.fetch_add(1, Ordering::Relaxed);
                if t == 3 {
                    last.store(done.load(Ordering::Relaxed), Ordering::Relaxed);
                }
                true
            },
            &|_w, run| run(),
        );
        assert_eq!(done.into_inner(), 4);
        // Task 3 must have been the 4th execution.
        assert_eq!(last.into_inner(), 4);
        assert_eq!(stats.executed.iter().sum::<u64>(), 4);
    }

    #[test]
    fn abort_skips_remaining_tasks() {
        let n = 32;
        let (deps, out_ptr, out_dst) = chain(n);
        let prio = vec![0u64; n];
        let place = vec![0u32; n];
        let spec = DagSpec {
            deps: &deps,
            out_ptr: &out_ptr,
            out_dst: &out_dst,
            priority: &prio,
            placement: &place,
        };
        let done = AtomicU64::new(0);
        let (_, stats) = run_dag(
            &spec,
            2,
            None,
            &|t, _| {
                done.fetch_add(1, Ordering::Relaxed);
                t != 5
            },
            &|_w, run| run(),
        );
        assert!(stats.aborted);
        assert_eq!(done.into_inner(), 6, "execution stops at the aborting task");
    }

    #[test]
    fn body_panic_propagates_after_join() {
        let n = 8;
        let (deps, out_ptr, out_dst) = chain(n);
        let prio = vec![0u64; n];
        let place = vec![0u32; n];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            let spec = DagSpec {
                deps: &deps,
                out_ptr: &out_ptr,
                out_dst: &out_dst,
                priority: &prio,
                placement: &place,
            };
            run_dag(
                &spec,
                2,
                None,
                &|t, _| {
                    if t == 3 {
                        panic!("task body boom");
                    }
                    true
                },
                &|_w, run| run(),
            );
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn sim_mode_is_deterministic_per_seed_and_policy() {
        let n = 40;
        // A fork-join DAG wide enough for scheduling freedom: 0 -> all -> last.
        let mut deps = vec![1u32; n];
        deps[0] = 0;
        deps[n - 1] = (n - 2) as u32;
        let mut out_ptr = vec![0u32; n + 1];
        let mut out_dst = Vec::new();
        for t in 0..n {
            if t == 0 {
                out_dst.extend((1..n as u32 - 1).collect::<Vec<_>>());
            } else if t < n - 1 {
                out_dst.push((n - 1) as u32);
            }
            out_ptr[t + 1] = out_dst.len() as u32;
        }
        let prio = vec![0u64; n];
        let place: Vec<u32> = (0..n as u32).collect();
        let run_order = |seed: u64, policy: SchedPolicy| {
            let spec = DagSpec {
                deps: &deps,
                out_ptr: &out_ptr,
                out_dst: &out_dst,
                priority: &prio,
                placement: &place,
            };
            let plan = FaultPlan::builder(seed).policy(policy).build();
            let order = Mutex::new(Vec::new());
            run_dag(
                &spec,
                3,
                Some(&plan),
                &|t, _| {
                    order.lock().unwrap().push(t);
                    true
                },
                &|_w, run| run(),
            );
            order.into_inner().unwrap()
        };
        for policy in [
            SchedPolicy::Uniform,
            SchedPolicy::StarveRank(1),
            SchedPolicy::DeliverLast,
            SchedPolicy::FifoPerPair,
        ] {
            let a = run_order(7, policy);
            let b = run_order(7, policy);
            assert_eq!(a, b, "same (seed, policy) must replay identically");
            assert_eq!(a.len(), n);
            assert_eq!(a[0], 0);
            assert_eq!(*a.last().unwrap(), (n - 1) as u32);
        }
        // Different seeds should (for this wide DAG) explore different orders.
        assert_ne!(run_order(1, SchedPolicy::Uniform), run_order(2, SchedPolicy::Uniform));
    }

    #[test]
    fn priorities_order_ready_roots() {
        // All-root DAG on one worker: execution must follow priority desc.
        let n = 10;
        let deps = vec![0u32; n];
        let out_ptr = vec![0u32; n + 1];
        let out_dst: Vec<u32> = Vec::new();
        let prio: Vec<u64> = (0..n as u64).collect();
        let place = vec![0u32; n];
        let spec = DagSpec {
            deps: &deps,
            out_ptr: &out_ptr,
            out_dst: &out_dst,
            priority: &prio,
            placement: &place,
        };
        let order = Mutex::new(Vec::new());
        run_dag(
            &spec,
            1,
            None,
            &|t, _| {
                order.lock().unwrap().push(t);
                true
            },
            &|_w, run| run(),
        );
        let got = order.into_inner().unwrap();
        assert_eq!(got, (0..n as u32).rev().collect::<Vec<_>>());
    }

    #[test]
    fn stealing_moves_work_to_idle_workers() {
        // Many independent roots all placed on worker 0; worker 1 must
        // steal to participate.
        let n = 200;
        let deps = vec![0u32; n];
        let out_ptr = vec![0u32; n + 1];
        let out_dst: Vec<u32> = Vec::new();
        let prio = vec![0u64; n];
        let place = vec![0u32; n];
        let spec = DagSpec {
            deps: &deps,
            out_ptr: &out_ptr,
            out_dst: &out_dst,
            priority: &prio,
            placement: &place,
        };
        let (_, stats) = run_dag(
            &spec,
            2,
            None,
            &|_t, _| {
                // A little work so worker 1 has time to come up and steal.
                std::hint::black_box((0..500).sum::<u64>());
                true
            },
            &|_w, run| run(),
        );
        assert_eq!(stats.executed.iter().sum::<u64>(), n as u64);
        // Stealing is timing-dependent, but with 200 tasks parked on one
        // queue the second worker essentially always gets some.
        assert!(stats.steals > 0 || stats.executed[1] == 0);
    }
}
