//! # pastix-runtime
//!
//! An in-process message-passing runtime: the MPI substitute of this
//! reproduction. Each *logical processor* has a rank, an unbounded
//! mailbox, and the ability to send typed messages to any peer — exactly
//! the communication surface the fan-in solver needs (factor-block sends
//! and aggregated-update-block sends, all asynchronous, received in any
//! order).
//!
//! The surface is the [`Comm`] trait, with two interchangeable backends:
//!
//! - [`run_spmd`] — one OS thread per logical processor ([`ProcCtx`]),
//!   the production backend;
//! - [`sim::run_sim_spmd`] — a deterministic single-execution simulation
//!   ([`sim::SimCtx`]) where a seeded scheduler decides which processor
//!   runs and when each message is delivered, with injectable faults.
//!   Every interleaving is reproducible from its seed, which is what the
//!   chaos suite drives.
//!
//! Because the static schedule makes every processor's task order fixed,
//! the solver knows *what* it is waiting for at each step; the
//! [`TaggedMailbox`] buffers early messages until their turn comes, which
//! is how PaStiX's asynchronous MPI receives are modeled in-process.

#![warn(missing_docs)]

pub mod sim;
pub mod steal;

pub use steal::DynamicOptions;

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::mpsc::{channel, Receiver, Sender};

/// A received message with its sender rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sender rank.
    pub from: usize,
    /// Payload.
    pub msg: M,
}

/// Outcome of a fault-aware send ([`Comm::send_faulty`]). The failing
/// variants hand the message back to the caller so a retry needs no
/// `Clone`.
#[derive(Debug)]
pub enum SendOutcome<M> {
    /// Accepted by the transport (delivery may still be delayed or
    /// duplicated by the simulator's faults).
    Delivered,
    /// Dropped by fault injection; the message is returned for retry.
    /// The thread backend never drops.
    Dropped(M),
    /// The peer already exited; the message is returned.
    Closed(M),
}

/// How many consecutive transport drops [`Comm::send_resilient`] retries
/// before declaring the link dead. With drop probability `p < 1` the
/// chance of hitting the limit is `p^64` — unreachable in practice, but it
/// turns a livelock (spinning on a dead peer) into a diagnosable panic.
pub const SEND_RETRY_LIMIT: usize = 64;

/// The SPMD communication surface shared by every backend: asynchronous
/// point-to-point sends plus blocking and non-blocking receives.
///
/// Code written against `Comm` (the fan-in factorization, the distributed
/// solves, the collectives) runs unchanged on OS threads ([`ProcCtx`]) or
/// under the deterministic simulator ([`sim::SimCtx`]).
pub trait Comm<M> {
    /// This processor's rank.
    fn rank(&self) -> usize;

    /// Number of logical processors.
    fn n_procs(&self) -> usize;

    /// Sends a message to `to` (sending to self is allowed and delivered
    /// through the same mailbox). Panics if the peer already exited. This
    /// is the *reliable* channel: fault injection never drops or
    /// duplicates it.
    fn send(&self, to: usize, msg: M);

    /// Fault-aware send: the message travels the lossy path (subject to
    /// the simulator's drop/duplicate faults) and the outcome — including
    /// the message itself on failure — is reported to the sender.
    fn send_faulty(&self, to: usize, msg: M) -> SendOutcome<M>;

    /// Sends a message, returning `false` instead of panicking when the
    /// peer already exited (used by error-propagation paths, where a
    /// recipient may have unwound before the message was produced). Under
    /// the simulator this traffic is also subject to the drop fault, which
    /// likewise reports `false`.
    fn send_lossy(&self, to: usize, msg: M) -> bool {
        matches!(self.send_faulty(to, msg), SendOutcome::Delivered)
    }

    /// Fault-tolerant send: retries transport drops (fault injection)
    /// until the message is accepted, returning `false` if the peer
    /// already exited. Panics after [`SEND_RETRY_LIMIT`] consecutive
    /// drops, which is unreachable for any drop probability below 1.
    fn send_resilient(&self, to: usize, msg: M) -> bool {
        let mut msg = msg;
        for _ in 0..SEND_RETRY_LIMIT {
            match self.send_faulty(to, msg) {
                SendOutcome::Delivered => return true,
                SendOutcome::Dropped(m) => msg = m,
                SendOutcome::Closed(_) => return false,
            }
        }
        panic!(
            "rank {} send_resilient to rank {to}: dropped {SEND_RETRY_LIMIT} consecutive times \
             (drop probability must be < 1 for resilient traffic)",
            self.rank()
        );
    }

    /// Blocking receive of the next message in arrival order.
    fn recv(&self) -> Envelope<M>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope<M>>;
}

/// Which runtime executes the solver: the production thread backend, the
/// deterministic fault-injecting simulator, or the task-graph-driven
/// work-stealing executor. This is the one switch the backend-generic
/// solver entry points (`Plan::factorize` / `FactorRun::solve_request` in
/// `pastix-solver`) dispatch on, so a single numerical codepath runs on
/// every backend.
///
/// ```
/// use pastix_runtime::{run_spmd_with, Backend, Comm};
/// use pastix_runtime::sim::FaultPlan;
/// // The same closure runs on threads or under the seeded simulator.
/// let hello = |ctx: &dyn Comm<usize>| ctx.rank() * 2;
/// let t = run_spmd_with::<usize, _, _>(&Backend::Threads, 3, hello);
/// let s = run_spmd_with::<usize, _, _>(
///     &Backend::Sim(FaultPlan::builder(7).build()),
///     3,
///     hello,
/// );
/// assert_eq!(t, s);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum Backend {
    /// One OS thread per logical processor — the production backend.
    #[default]
    Threads,
    /// Deterministic serialized simulation driven by the given fault plan;
    /// every execution is a pure function of `(seed, policy)`.
    Sim(sim::FaultPlan),
    /// Task-graph-driven work-stealing executor ([`steal::run_dag`]): the
    /// static schedule, when present, supplies only initial placement and
    /// task priority. Not an SPMD backend — [`run_spmd_with`] rejects it;
    /// it is driven through the `Plan` API in `pastix-solver`.
    Dynamic(steal::DynamicOptions),
}

/// Runs `n_procs` logical processors of `f` on the chosen [`Backend`].
/// The closure receives the backend-erased [`Comm`] surface, so the same
/// SPMD body serves production and simulation; `M: Clone` is only
/// exercised by the simulator's duplicate-delivery fault.
pub fn run_spmd_with<M, R, F>(backend: &Backend, n_procs: usize, f: F) -> Vec<R>
where
    M: Send + Clone,
    R: Send,
    F: Fn(&dyn Comm<M>) -> R + Sync,
{
    match backend {
        Backend::Threads => run_spmd(n_procs, |ctx| f(&ctx)),
        Backend::Sim(plan) => sim::run_sim_spmd(n_procs, plan, |ctx| f(&ctx)),
        Backend::Dynamic(_) => panic!(
            "Backend::Dynamic is task-graph based, not SPMD; drive it through \
             the Plan API (Plan::factorize / FactorRun::solve_request) or \
             steal::run_dag directly"
        ),
    }
}

/// Per-processor communication context of the thread backend.
pub struct ProcCtx<M> {
    rank: usize,
    n_procs: usize,
    peers: Vec<Sender<Envelope<M>>>,
    inbox: Receiver<Envelope<M>>,
}

impl<M: Send> Comm<M> for ProcCtx<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn n_procs(&self) -> usize {
        self.n_procs
    }

    fn send(&self, to: usize, msg: M) {
        if self.peers[to]
            .send(Envelope {
                from: self.rank,
                msg,
            })
            .is_err()
        {
            panic!(
                "rank {} send to rank {}: peer mailbox closed (peer exited before this message)",
                self.rank, to
            );
        }
    }

    fn send_faulty(&self, to: usize, msg: M) -> SendOutcome<M> {
        // The thread backend's channels are reliable: the only failure is
        // a peer that already exited, in which case std's mpsc hands the
        // envelope back through the error.
        match self.peers[to].send(Envelope {
            from: self.rank,
            msg,
        }) {
            Ok(()) => SendOutcome::Delivered,
            Err(e) => SendOutcome::Closed(e.0.msg),
        }
    }

    fn recv(&self) -> Envelope<M> {
        match self.inbox.recv() {
            Ok(env) => env,
            Err(_) => panic!(
                "rank {} recv: all {} peer senders dropped while still waiting for a message",
                self.rank, self.n_procs
            ),
        }
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        self.inbox.try_recv().ok()
    }
}

impl<M: Send> ProcCtx<M> {
    /// This processor's rank (inherent mirror of [`Comm::rank`], so
    /// closures taking `ProcCtx` by value don't need the trait in scope).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of logical processors.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// See [`Comm::send`].
    pub fn send(&self, to: usize, msg: M) {
        Comm::send(self, to, msg)
    }

    /// See [`Comm::send_lossy`].
    pub fn send_lossy(&self, to: usize, msg: M) -> bool {
        Comm::send_lossy(self, to, msg)
    }

    /// See [`Comm::send_faulty`].
    pub fn send_faulty(&self, to: usize, msg: M) -> SendOutcome<M> {
        Comm::send_faulty(self, to, msg)
    }

    /// See [`Comm::send_resilient`].
    pub fn send_resilient(&self, to: usize, msg: M) -> bool {
        Comm::send_resilient(self, to, msg)
    }

    /// See [`Comm::recv`].
    pub fn recv(&self) -> Envelope<M> {
        Comm::recv(self)
    }

    /// See [`Comm::try_recv`].
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        Comm::try_recv(self)
    }
}

/// Runs `n_procs` logical processors, each executing `f(ctx)` on its own
/// OS thread, and returns their results in rank order. Threads are
/// scoped: a panicking processor propagates after the others are joined.
///
/// ```
/// use pastix_runtime::run_spmd;
/// // Every rank sends its rank to rank 0; rank 0 sums.
/// let out = run_spmd::<usize, usize, _>(3, |ctx| {
///     if ctx.rank() == 0 {
///         (1..ctx.n_procs()).map(|_| ctx.recv().msg).sum()
///     } else {
///         ctx.send(0, ctx.rank());
///         0
///     }
/// });
/// assert_eq!(out[0], 3);
/// ```
pub fn run_spmd<M, R, F>(n_procs: usize, f: F) -> Vec<R>
where
    M: Send,
    R: Send,
    F: Fn(ProcCtx<M>) -> R + Sync,
{
    assert!(n_procs >= 1);
    let mut senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(n_procs);
    let mut receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(n_procs);
    for _ in 0..n_procs {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let contexts: Vec<ProcCtx<M>> = receivers
        .iter_mut()
        .enumerate()
        .map(|(rank, rx)| ProcCtx {
            rank,
            n_procs,
            peers: senders.clone(),
            inbox: rx.take().unwrap(),
        })
        .collect();
    drop(senders);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = contexts
            .into_iter()
            .map(|ctx| scope.spawn(move || f(ctx)))
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(rank, h)| match h.join() {
                Ok(r) => r,
                Err(payload) => {
                    notify_failure(rank);
                    std::panic::resume_unwind(payload)
                }
            })
            .collect()
    })
}

/// Process-wide observer of rank failures, set with
/// [`set_failure_observer`]. Stored as a plain fn pointer so notifying
/// is a single atomic load on the (cold) failure path.
static FAILURE_OBSERVER: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Registers a process-wide callback invoked with the rank index when a
/// worker thread inside [`run_spmd`] is found panicked at join time.
/// The runtime stays dependency-free — the tracing layer installs its
/// flight-recorder hook here. The observer must not panic.
pub fn set_failure_observer(f: fn(usize)) {
    FAILURE_OBSERVER.store(f as usize, std::sync::atomic::Ordering::Release);
}

fn notify_failure(rank: usize) {
    let p = FAILURE_OBSERVER.load(std::sync::atomic::Ordering::Acquire);
    if p != 0 {
        // SAFETY: the only non-zero values ever stored are `fn(usize)`
        // pointers from `set_failure_observer`.
        let f: fn(usize) = unsafe { std::mem::transmute::<usize, fn(usize)>(p) };
        f(rank);
    }
}

/// Observer of one rank's communication traffic, attached with
/// [`Instrumented`]. The runtime stays dependency-free: the tracing crate
/// implements this trait, the runtime only defines the seam.
///
/// `bytes` and `kind` come from the caller-supplied metadata function
/// (payload size and a small message-class tag), so the runtime never
/// needs to understand message types.
pub trait CommHook {
    /// A message was accepted by the transport (reliable or faulty path).
    fn on_send(&self, to: usize, bytes: u64, kind: u8);
    /// A lossy-path message was dropped by fault injection.
    fn on_send_dropped(&self, to: usize, bytes: u64, kind: u8);
    /// A message was received; `wait_ns` is the time this rank spent
    /// blocked in `recv()` for it (0 for non-blocking receives).
    fn on_recv(&self, from: usize, bytes: u64, kind: u8, wait_ns: u64);
}

/// Hook composition: `(a, b)` reports every observation to `a` then `b`,
/// so one [`Instrumented`] wrapper can feed both the trace session and a
/// live gauge aggregator without a second decoration layer.
impl<A: CommHook, B: CommHook> CommHook for (A, B) {
    #[inline]
    fn on_send(&self, to: usize, bytes: u64, kind: u8) {
        self.0.on_send(to, bytes, kind);
        self.1.on_send(to, bytes, kind);
    }

    #[inline]
    fn on_send_dropped(&self, to: usize, bytes: u64, kind: u8) {
        self.0.on_send_dropped(to, bytes, kind);
        self.1.on_send_dropped(to, bytes, kind);
    }

    #[inline]
    fn on_recv(&self, from: usize, bytes: u64, kind: u8, wait_ns: u64) {
        self.0.on_recv(from, bytes, kind, wait_ns);
        self.1.on_recv(from, bytes, kind, wait_ns);
    }
}

/// A [`Comm`] decorator that reports every send/receive to a [`CommHook`]
/// with `(kind, bytes)` metadata extracted by a caller-supplied function.
/// `send_lossy` and `send_resilient` keep their default implementations,
/// so retries and drops are observed per attempt through `send_faulty`.
pub struct Instrumented<'a, M, C: ?Sized, H> {
    inner: &'a C,
    hook: H,
    meta: fn(&M) -> (u8, u64),
}

impl<'a, M, C: Comm<M> + ?Sized, H: CommHook> Instrumented<'a, M, C, H> {
    /// Wraps `inner`, reporting traffic to `hook`. `meta` maps a message
    /// to `(kind_tag, payload_bytes)`.
    pub fn new(inner: &'a C, hook: H, meta: fn(&M) -> (u8, u64)) -> Self {
        Self { inner, hook, meta }
    }
}

impl<M, C: Comm<M> + ?Sized, H: CommHook> Comm<M> for Instrumented<'_, M, C, H> {
    #[inline]
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    #[inline]
    fn n_procs(&self) -> usize {
        self.inner.n_procs()
    }

    fn send(&self, to: usize, msg: M) {
        let (kind, bytes) = (self.meta)(&msg);
        self.inner.send(to, msg);
        self.hook.on_send(to, bytes, kind);
    }

    fn send_faulty(&self, to: usize, msg: M) -> SendOutcome<M> {
        let (kind, bytes) = (self.meta)(&msg);
        let out = self.inner.send_faulty(to, msg);
        match &out {
            SendOutcome::Delivered => self.hook.on_send(to, bytes, kind),
            SendOutcome::Dropped(_) => self.hook.on_send_dropped(to, bytes, kind),
            SendOutcome::Closed(_) => {}
        }
        out
    }

    fn recv(&self) -> Envelope<M> {
        let t0 = std::time::Instant::now();
        let env = self.inner.recv();
        let (kind, bytes) = (self.meta)(&env.msg);
        self.hook
            .on_recv(env.from, bytes, kind, t0.elapsed().as_nanos() as u64);
        env
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        let env = self.inner.try_recv()?;
        let (kind, bytes) = (self.meta)(&env.msg);
        self.hook.on_recv(env.from, bytes, kind, 0);
        Some(env)
    }
}

/// Collective operations built on the point-to-point layer. They run as
/// **binomial trees** — `⌈log₂ p⌉` rounds instead of the linear
/// rank-0-rooted sweeps of the first version — so the phase boundaries of
/// a solver whose steady state is fully asynchronous stay cheap as the
/// processor count grows.
///
/// The collectives travel the *faulty* path ([`Comm::send_faulty`]), so
/// under the simulator their messages can be delayed, dropped, or
/// duplicated like any other lossy traffic — and the protocol absorbs it:
/// dropped sends are retried (the transport reports the drop to the
/// sender) and every message carries a caller-supplied **phase id** in a
/// [`CollMsg`] envelope. Each rank keeps a [`Collectives`] hold-buffer:
/// frames from a *future* phase (possible when reordering lets phase
/// `k+1` traffic overtake phase `k`'s release) are parked until their
/// phase is demanded; frames from a *past* phase are duplicates and are
/// dropped at the next phase boundary.
///
/// Contract: every rank invokes the same sequence of collectives on one
/// [`Collectives`] instance, with strictly increasing phase ids (a
/// monotonic counter does). Collective traffic must not be interleaved
/// with other in-flight messages of the same `Comm` channel.
pub mod collective {
    use super::{Comm, HashMap};

    /// Wire envelope of the resilient collectives: the caller's payload
    /// plus the phase id that fences one collective invocation from the
    /// next under duplicate-delivery and reordering faults.
    #[derive(Debug, Clone, PartialEq)]
    pub struct CollMsg<M> {
        /// Caller-chosen phase id; strictly increasing across calls on
        /// the same channel.
        pub phase: u64,
        /// The collective's payload.
        pub payload: M,
    }

    /// Sends one collective frame, retrying injected drops; a peer that
    /// exited mid-collective is a protocol violation, as with the
    /// reliable channel.
    fn coll_send<M: Clone, C: Comm<CollMsg<M>> + ?Sized>(ctx: &C, to: usize, msg: CollMsg<M>) {
        assert!(
            ctx.send_resilient(to, msg),
            "rank {} collective send to rank {to}: peer exited mid-collective",
            ctx.rank()
        );
    }

    /// Per-rank collective state: a hold-buffer for frames that arrive
    /// before their phase is demanded. One instance per rank, shared by
    /// every collective call on that rank, in phase order.
    #[derive(Default)]
    pub struct Collectives<M> {
        /// Frames parked by (phase, sender) until demanded. Entries older
        /// than the current phase are dropped on the next phase boundary.
        held: HashMap<(u64, usize), Vec<M>>,
    }

    impl<M: Clone> Collectives<M> {
        /// Creates an empty hold-buffer.
        pub fn new() -> Self {
            Self {
                held: HashMap::new(),
            }
        }

        /// Number of parked frames (diagnostics).
        pub fn held(&self) -> usize {
            self.held.values().map(|v| v.len()).sum()
        }

        /// Drops parked frames from phases before `phase`: with strictly
        /// increasing phases they can only be stale duplicates.
        fn gc(&mut self, phase: u64) {
            self.held.retain(|(ph, _), _| *ph >= phase);
        }

        /// Receives the `(phase, from)` frame, parking everything else
        /// that arrives in the meantime. Duplicates of frames already
        /// consumed simply sit parked until [`Self::gc`] clears them.
        fn recv_from<C: Comm<CollMsg<M>> + ?Sized>(
            &mut self,
            ctx: &C,
            phase: u64,
            from: usize,
        ) -> M {
            if let Some(v) = self.held.get_mut(&(phase, from)) {
                let m = v.pop().expect("held entries are never empty");
                if v.is_empty() {
                    self.held.remove(&(phase, from));
                }
                return m;
            }
            loop {
                let env = ctx.recv();
                if env.msg.phase == phase && env.from == from {
                    return env.msg.payload;
                }
                self.held
                    .entry((env.msg.phase, env.from))
                    .or_default()
                    .push(env.msg.payload);
            }
        }

        /// Binomial reduce to rank 0. In round `j` (step `2^j`) a rank
        /// whose bit `j` is set forwards its accumulator to `rank - 2^j`
        /// and is done; a rank whose bit `j` is clear absorbs the subtree
        /// of `rank + 2^j` (when it exists). The accumulator of rank `r`
        /// after round `j` therefore covers the *contiguous* rank range
        /// `[r, min(r + 2^{j+1}, p))`, and every combine joins two
        /// adjacent ranges left-to-right — the association tree is fixed
        /// by `p` alone, so the result never depends on message
        /// interleaving. Returns `Some(total)` on rank 0, `None`
        /// elsewhere.
        fn reduce_to_zero<C, F>(&mut self, ctx: &C, phase: u64, mine: M, combine: &F) -> Option<M>
        where
            C: Comm<CollMsg<M>> + ?Sized,
            F: Fn(M, M) -> M,
        {
            let p = ctx.n_procs();
            let r = ctx.rank();
            let mut acc = mine;
            let mut step = 1usize;
            while step < p {
                if r & step != 0 {
                    coll_send(ctx, r - step, CollMsg { phase, payload: acc });
                    return None;
                }
                if r + step < p {
                    let theirs = self.recv_from(ctx, phase, r + step);
                    acc = combine(acc, theirs);
                }
                step <<= 1;
            }
            Some(acc)
        }

        /// Binomial broadcast from `root`. Ranks are rotated so the root
        /// is virtual rank 0; virtual rank `v > 0` receives from its
        /// parent `v` with the lowest set bit cleared, then fans out to
        /// children `v + 2^j` for every `2^j` below its lowest set bit
        /// (every power below `p` for the root), largest subtree first.
        fn bcast<C: Comm<CollMsg<M>> + ?Sized>(
            &mut self,
            ctx: &C,
            phase: u64,
            root: usize,
            value: Option<M>,
        ) -> M {
            let p = ctx.n_procs();
            let vr = (ctx.rank() + p - root) % p;
            let v = if vr == 0 {
                value.expect("root must supply the broadcast value")
            } else {
                let parent = ((vr & (vr - 1)) + root) % p;
                self.recv_from(ctx, phase, parent)
            };
            let limit = if vr == 0 { p } else { vr & vr.wrapping_neg() };
            let mut step = 1usize;
            while step < limit {
                step <<= 1;
            }
            step >>= 1;
            while step > 0 {
                let child = vr + step;
                if child < p {
                    coll_send(
                        ctx,
                        (child + root) % p,
                        CollMsg {
                            phase,
                            payload: v.clone(),
                        },
                    );
                }
                step >>= 1;
            }
            v
        }

        /// Barrier: binomial gather to rank 0, then a binomial release
        /// down the mirrored tree — `2⌈log₂ p⌉` rounds. The caller
        /// provides the signal payload (any value) and the phase id.
        pub fn barrier<C: Comm<CollMsg<M>> + ?Sized>(&mut self, ctx: &C, phase: u64, signal: M) {
            self.gc(phase);
            if ctx.n_procs() == 1 {
                return;
            }
            let done = self.reduce_to_zero(ctx, phase, signal, &|keep, _| keep);
            let _ = self.bcast(ctx, phase, 0, done);
        }

        /// Broadcast from `root`: returns the payload on every rank after
        /// `⌈log₂ p⌉` binomial rounds. Only the root supplies
        /// `Some(value)`.
        pub fn broadcast<C: Comm<CollMsg<M>> + ?Sized>(
            &mut self,
            ctx: &C,
            phase: u64,
            root: usize,
            value: Option<M>,
        ) -> M {
            self.gc(phase);
            self.bcast(ctx, phase, root, value)
        }

        /// All-reduce: binomial reduce to rank 0 followed by a binomial
        /// broadcast of the total. Contributions are combined over
        /// contiguous rank ranges in the fixed tree of
        /// [`Self::reduce_to_zero`], so the result is a pure function of
        /// the inputs and `p` — independent of message interleaving — for
        /// any associative combiner (a non-associative combiner sees the
        /// tree's association, not a linear left fold).
        pub fn all_reduce<C, F>(&mut self, ctx: &C, phase: u64, mine: M, combine: F) -> M
        where
            C: Comm<CollMsg<M>> + ?Sized,
            F: Fn(M, M) -> M,
        {
            self.gc(phase);
            let total = self.reduce_to_zero(ctx, phase, mine, &combine);
            self.bcast(ctx, phase, 0, total)
        }
    }
}

/// A mailbox that delivers messages *by key*, buffering out-of-order
/// arrivals: the static schedule tells the solver which factor block or
/// aggregated update block it needs next; anything else that arrives early
/// waits in the pool.
pub struct TaggedMailbox<K, M> {
    pool: HashMap<K, Vec<Envelope<M>>>,
}

impl<K: Eq + Hash + Clone, M> Default for TaggedMailbox<K, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, M> TaggedMailbox<K, M> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self {
            pool: HashMap::new(),
        }
    }

    /// Deposits a message under a key.
    pub fn deposit(&mut self, key: K, env: Envelope<M>) {
        self.pool.entry(key).or_default().push(env);
    }

    /// Takes one buffered message for `key`, if any.
    pub fn take(&mut self, key: &K) -> Option<Envelope<M>> {
        let v = self.pool.get_mut(key)?;
        let env = v.pop();
        if v.is_empty() {
            self.pool.remove(key);
        }
        env
    }

    /// Blocking receive of a message with the wanted key: drains `ctx`
    /// until `classify` maps an arrival to `key`, buffering everything
    /// else. Works on any [`Comm`] backend.
    pub fn recv_key<C, F>(&mut self, ctx: &C, key: &K, classify: F) -> Envelope<M>
    where
        C: Comm<M>,
        F: Fn(&M) -> K,
    {
        if let Some(env) = self.take(key) {
            return env;
        }
        loop {
            let env = ctx.recv();
            let k = classify(&env.msg);
            if &k == key {
                return env;
            }
            self.deposit(k, env);
        }
    }

    /// Number of buffered messages (diagnostics).
    pub fn buffered(&self) -> usize {
        self.pool.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the next; sum arrives intact.
        let results = run_spmd::<usize, usize, _>(4, |ctx| {
            let next = (ctx.rank() + 1) % ctx.n_procs();
            ctx.send(next, ctx.rank() * 10);
            let env = ctx.recv();
            assert_eq!(env.from, (ctx.rank() + ctx.n_procs() - 1) % ctx.n_procs());
            env.msg
        });
        assert_eq!(results, vec![30, 0, 10, 20]);
    }

    #[test]
    fn self_send_works() {
        let results = run_spmd::<&'static str, String, _>(2, |ctx| {
            ctx.send(ctx.rank(), "hello");
            let env = ctx.recv();
            format!("{}:{}", env.from, env.msg)
        });
        assert_eq!(results, vec!["0:hello", "1:hello"]);
    }

    #[test]
    fn single_proc_spmd() {
        let results = run_spmd::<(), usize, _>(1, |ctx| ctx.n_procs());
        assert_eq!(results, vec![1]);
    }

    #[test]
    fn tagged_mailbox_buffers_out_of_order() {
        // Rank 1 sends keys 5 then 3; rank 0 asks for 3 first.
        let results = run_spmd::<u32, Vec<u32>, _>(2, |ctx| {
            if ctx.rank() == 1 {
                ctx.send(0, 5);
                ctx.send(0, 3);
                return vec![];
            }
            let mut mb = TaggedMailbox::<u32, u32>::new();
            let a = mb.recv_key(&ctx, &3, |&m| m);
            let b = mb.recv_key(&ctx, &5, |&m| m);
            assert_eq!(mb.buffered(), 0);
            vec![a.msg, b.msg]
        });
        assert_eq!(results[0], vec![3, 5]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let results = run_spmd::<u8, bool, _>(2, |ctx| {
            if ctx.rank() == 0 {
                // Just exercise the non-blocking path (arrival timing is
                // nondeterministic here).
                let _ = ctx.try_recv();
                ctx.send(1, 7);
                true
            } else {
                let env = ctx.recv();
                env.msg == 7
            }
        });
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn collective_barrier_and_broadcast() {
        use collective::{CollMsg, Collectives};
        let results = run_spmd::<CollMsg<u64>, u64, _>(4, |ctx| {
            let mut coll = Collectives::new();
            coll.barrier(&ctx, 0, 0);
            let v = coll.broadcast(&ctx, 1, 2, if ctx.rank() == 2 { Some(99) } else { None });
            coll.barrier(&ctx, 2, 0);
            v
        });
        assert_eq!(results, vec![99; 4]);
    }

    #[test]
    fn collective_all_reduce_sum() {
        use collective::{CollMsg, Collectives};
        let results = run_spmd::<CollMsg<u64>, u64, _>(5, |ctx| {
            Collectives::new().all_reduce(&ctx, 0, ctx.rank() as u64 + 1, |a, b| a + b)
        });
        assert_eq!(results, vec![15; 5]);
    }

    #[test]
    fn collective_single_proc_degenerate() {
        use collective::{CollMsg, Collectives};
        let results = run_spmd::<CollMsg<u64>, u64, _>(1, |ctx| {
            let mut coll = Collectives::new();
            coll.barrier(&ctx, 0, 0);
            coll.all_reduce(&ctx, 1, 7, |a, b| a + b)
        });
        assert_eq!(results, vec![7]);
    }

    #[test]
    fn random_all_to_all_storm() {
        // Every rank sends a deterministic pseudo-random number of tagged
        // messages to every other; receivers demand them in ascending tag
        // order, exercising the out-of-order pool hard.
        let p = 4usize;
        let results = run_spmd::<(u32, u32), u64, _>(p, |ctx| {
            let me = ctx.rank();
            // Deterministic per-pair counts: count(a, b) = (a*7 + b*3) % 5 + 1.
            let count = |a: usize, b: usize| ((a * 7 + b * 3) % 5 + 1) as u32;
            for q in 0..p {
                if q == me {
                    continue;
                }
                for tag in 0..count(me, q) {
                    ctx.send(q, (tag, (me as u32 + 1) * 100 + tag));
                }
            }
            // Receive from everyone, demanding tags in order.
            let mut mb = TaggedMailbox::<(usize, u32), (u32, u32)>::new();
            let mut sum = 0u64;
            for q in 0..p {
                if q == me {
                    continue;
                }
                for tag in 0..count(q, me) {
                    // Key = (sender, tag): drain until it shows up.
                    let env = loop {
                        if let Some(e) = mb.take(&(q, tag)) {
                            break e;
                        }
                        let e = ctx.recv();
                        let key = (e.from, e.msg.0);
                        if key == (q, tag) {
                            break e;
                        }
                        mb.deposit(key, e);
                    };
                    assert_eq!(env.msg.1, (q as u32 + 1) * 100 + tag);
                    sum += env.msg.1 as u64;
                }
            }
            assert_eq!(mb.buffered(), 0);
            sum
        });
        // Deterministic totals: recompute expected per rank.
        let count = |a: usize, b: usize| ((a * 7 + b * 3) % 5 + 1) as u64;
        for (me, &got) in results.iter().enumerate() {
            let mut expect = 0u64;
            for q in 0..p {
                if q == me {
                    continue;
                }
                for tag in 0..count(q, me) {
                    expect += (q as u64 + 1) * 100 + tag;
                }
            }
            assert_eq!(got, expect, "rank {me}");
        }
    }

    #[test]
    fn many_messages_fifo_per_pair() {
        let results = run_spmd::<u32, Vec<u32>, _>(2, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..100 {
                    ctx.send(1, i);
                }
                vec![]
            } else {
                (0..100).map(|_| ctx.recv().msg).collect()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_lossy_false_after_peer_exit() {
        // Rank 1 exits immediately; rank 0 keeps lossy-sending until the
        // peer's mailbox closes. Must terminate with a `false` rather than
        // a panic.
        let results = run_spmd::<u32, bool, _>(2, |ctx| {
            if ctx.rank() == 1 {
                return true;
            }
            loop {
                if !ctx.send_lossy(1, 42) {
                    return true;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn instrumented_reports_sends_and_recvs() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        #[derive(Clone)]
        struct Count {
            sends: Arc<AtomicU64>,
            recvs: Arc<AtomicU64>,
            bytes: Arc<AtomicU64>,
        }
        impl CommHook for Count {
            fn on_send(&self, _to: usize, bytes: u64, _kind: u8) {
                self.sends.fetch_add(1, Ordering::Relaxed);
                self.bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            fn on_send_dropped(&self, _to: usize, _bytes: u64, _kind: u8) {}
            fn on_recv(&self, _from: usize, _bytes: u64, _kind: u8, _wait: u64) {
                self.recvs.fetch_add(1, Ordering::Relaxed);
            }
        }
        let hook = Count {
            sends: Arc::new(AtomicU64::new(0)),
            recvs: Arc::new(AtomicU64::new(0)),
            bytes: Arc::new(AtomicU64::new(0)),
        };
        let h = hook.clone();
        run_spmd::<u32, (), _>(2, move |ctx| {
            let ctx = Instrumented::new(&ctx, h.clone(), |m: &u32| (1, *m as u64));
            let next = (ctx.rank() + 1) % 2;
            // One reliable send, one faulty-path send, one try_recv poll.
            ctx.send(next, 10);
            assert!(matches!(ctx.send_faulty(next, 6), SendOutcome::Delivered));
            let a = ctx.recv();
            let b = loop {
                if let Some(e) = ctx.try_recv() {
                    break e;
                }
            };
            assert_eq!(a.msg + b.msg, 16);
        });
        assert_eq!(hook.sends.load(Ordering::Relaxed), 4);
        assert_eq!(hook.recvs.load(Ordering::Relaxed), 4);
        assert_eq!(hook.bytes.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn send_panic_carries_rank_context() {
        let caught = std::panic::catch_unwind(|| {
            run_spmd::<u32, (), _>(2, |ctx| {
                if ctx.rank() == 1 {
                    return;
                }
                // Keep (non-lossy) sending until the peer exits: the panic
                // message must name both ranks.
                loop {
                    ctx.send(1, 1);
                    std::thread::yield_now();
                }
            });
        });
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("rank 0 send to rank 1"),
            "panic message missing context: {msg:?}"
        );
    }
}
