//! # pastix-runtime
//!
//! An in-process message-passing runtime: the MPI substitute of this
//! reproduction. Each *logical processor* has a rank, an unbounded
//! mailbox, and the ability to send typed messages to any peer — exactly
//! the communication surface the fan-in solver needs (factor-block sends
//! and aggregated-update-block sends, all asynchronous, received in any
//! order).
//!
//! The surface is the [`Comm`] trait, with two interchangeable backends:
//!
//! - [`run_spmd`] — one OS thread per logical processor ([`ProcCtx`]),
//!   the production backend;
//! - [`sim::run_sim_spmd`] — a deterministic single-execution simulation
//!   ([`sim::SimCtx`]) where a seeded scheduler decides which processor
//!   runs and when each message is delivered, with injectable faults.
//!   Every interleaving is reproducible from its seed, which is what the
//!   chaos suite drives.
//!
//! Because the static schedule makes every processor's task order fixed,
//! the solver knows *what* it is waiting for at each step; the
//! [`TaggedMailbox`] buffers early messages until their turn comes, which
//! is how PaStiX's asynchronous MPI receives are modeled in-process.

#![warn(missing_docs)]

pub mod sim;

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::mpsc::{channel, Receiver, Sender};

/// A received message with its sender rank.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<M> {
    /// Sender rank.
    pub from: usize,
    /// Payload.
    pub msg: M,
}

/// The SPMD communication surface shared by every backend: asynchronous
/// point-to-point sends plus blocking and non-blocking receives.
///
/// Code written against `Comm` (the fan-in factorization, the distributed
/// solves, the collectives) runs unchanged on OS threads ([`ProcCtx`]) or
/// under the deterministic simulator ([`sim::SimCtx`]).
pub trait Comm<M> {
    /// This processor's rank.
    fn rank(&self) -> usize;

    /// Number of logical processors.
    fn n_procs(&self) -> usize;

    /// Sends a message to `to` (sending to self is allowed and delivered
    /// through the same mailbox). Panics if the peer already exited.
    fn send(&self, to: usize, msg: M);

    /// Sends a message, returning `false` instead of panicking when the
    /// peer already exited (used by error-propagation paths, where a
    /// recipient may have unwound before the message was produced).
    fn send_lossy(&self, to: usize, msg: M) -> bool;

    /// Blocking receive of the next message in arrival order.
    fn recv(&self) -> Envelope<M>;

    /// Non-blocking receive.
    fn try_recv(&self) -> Option<Envelope<M>>;
}

/// Per-processor communication context of the thread backend.
pub struct ProcCtx<M> {
    rank: usize,
    n_procs: usize,
    peers: Vec<Sender<Envelope<M>>>,
    inbox: Receiver<Envelope<M>>,
}

impl<M: Send> Comm<M> for ProcCtx<M> {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn n_procs(&self) -> usize {
        self.n_procs
    }

    fn send(&self, to: usize, msg: M) {
        if self.peers[to]
            .send(Envelope {
                from: self.rank,
                msg,
            })
            .is_err()
        {
            panic!(
                "rank {} send to rank {}: peer mailbox closed (peer exited before this message)",
                self.rank, to
            );
        }
    }

    fn send_lossy(&self, to: usize, msg: M) -> bool {
        self.peers[to]
            .send(Envelope {
                from: self.rank,
                msg,
            })
            .is_ok()
    }

    fn recv(&self) -> Envelope<M> {
        match self.inbox.recv() {
            Ok(env) => env,
            Err(_) => panic!(
                "rank {} recv: all {} peer senders dropped while still waiting for a message",
                self.rank, self.n_procs
            ),
        }
    }

    fn try_recv(&self) -> Option<Envelope<M>> {
        self.inbox.try_recv().ok()
    }
}

impl<M: Send> ProcCtx<M> {
    /// This processor's rank (inherent mirror of [`Comm::rank`], so
    /// closures taking `ProcCtx` by value don't need the trait in scope).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of logical processors.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// See [`Comm::send`].
    pub fn send(&self, to: usize, msg: M) {
        Comm::send(self, to, msg)
    }

    /// See [`Comm::send_lossy`].
    pub fn send_lossy(&self, to: usize, msg: M) -> bool {
        Comm::send_lossy(self, to, msg)
    }

    /// See [`Comm::recv`].
    pub fn recv(&self) -> Envelope<M> {
        Comm::recv(self)
    }

    /// See [`Comm::try_recv`].
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        Comm::try_recv(self)
    }
}

/// Runs `n_procs` logical processors, each executing `f(ctx)` on its own
/// OS thread, and returns their results in rank order. Threads are
/// scoped: a panicking processor propagates after the others are joined.
///
/// ```
/// use pastix_runtime::run_spmd;
/// // Every rank sends its rank to rank 0; rank 0 sums.
/// let out = run_spmd::<usize, usize, _>(3, |ctx| {
///     if ctx.rank() == 0 {
///         (1..ctx.n_procs()).map(|_| ctx.recv().msg).sum()
///     } else {
///         ctx.send(0, ctx.rank());
///         0
///     }
/// });
/// assert_eq!(out[0], 3);
/// ```
pub fn run_spmd<M, R, F>(n_procs: usize, f: F) -> Vec<R>
where
    M: Send,
    R: Send,
    F: Fn(ProcCtx<M>) -> R + Sync,
{
    assert!(n_procs >= 1);
    let mut senders: Vec<Sender<Envelope<M>>> = Vec::with_capacity(n_procs);
    let mut receivers: Vec<Option<Receiver<Envelope<M>>>> = Vec::with_capacity(n_procs);
    for _ in 0..n_procs {
        let (tx, rx) = channel();
        senders.push(tx);
        receivers.push(Some(rx));
    }
    let contexts: Vec<ProcCtx<M>> = receivers
        .iter_mut()
        .enumerate()
        .map(|(rank, rx)| ProcCtx {
            rank,
            n_procs,
            peers: senders.clone(),
            inbox: rx.take().unwrap(),
        })
        .collect();
    drop(senders);
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = contexts
            .into_iter()
            .map(|ctx| scope.spawn(move || f(ctx)))
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    })
}

/// Collective operations built on the point-to-point layer. They follow
/// simple linear (rank-0-rooted) patterns — adequate for the phase
/// boundaries of a solver whose steady state is fully asynchronous.
pub mod collective {
    use super::{Comm, Envelope};

    /// Barrier: everyone reports to rank 0, rank 0 releases everyone.
    /// Messages of type `M` must be constructible for the signal; the
    /// caller provides the signal value and a predicate recognizing it.
    /// The barrier must not be interleaved with other in-flight traffic.
    pub fn barrier<M: Clone, C: Comm<M>>(ctx: &C, signal: M) {
        let p = ctx.n_procs();
        if p == 1 {
            return;
        }
        if ctx.rank() == 0 {
            for _ in 1..p {
                let _ = ctx.recv();
            }
            for q in 1..p {
                ctx.send(q, signal.clone());
            }
        } else {
            ctx.send(0, signal.clone());
            let _ = ctx.recv();
        }
    }

    /// Broadcast from `root`: returns the payload on every rank.
    pub fn broadcast<M: Clone, C: Comm<M>>(ctx: &C, root: usize, value: Option<M>) -> M {
        if ctx.rank() == root {
            let v = value.expect("root must supply the broadcast value");
            for q in 0..ctx.n_procs() {
                if q != root {
                    ctx.send(q, v.clone());
                }
            }
            v
        } else {
            ctx.recv().msg
        }
    }

    /// All-reduce with a commutative combiner; linear gather to rank 0 then
    /// broadcast. Returns the combined value on every rank.
    pub fn all_reduce<M, C, F>(ctx: &C, mine: M, combine: F) -> M
    where
        M: Clone,
        C: Comm<M>,
        F: Fn(M, M) -> M,
    {
        let p = ctx.n_procs();
        if p == 1 {
            return mine;
        }
        if ctx.rank() == 0 {
            let mut acc = mine;
            for _ in 1..p {
                let Envelope { msg, .. } = ctx.recv();
                acc = combine(acc, msg);
            }
            for q in 1..p {
                ctx.send(q, acc.clone());
            }
            acc
        } else {
            ctx.send(0, mine);
            ctx.recv().msg
        }
    }
}

/// A mailbox that delivers messages *by key*, buffering out-of-order
/// arrivals: the static schedule tells the solver which factor block or
/// aggregated update block it needs next; anything else that arrives early
/// waits in the pool.
pub struct TaggedMailbox<K, M> {
    pool: HashMap<K, Vec<Envelope<M>>>,
}

impl<K: Eq + Hash + Clone, M> Default for TaggedMailbox<K, M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, M> TaggedMailbox<K, M> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Self {
            pool: HashMap::new(),
        }
    }

    /// Deposits a message under a key.
    pub fn deposit(&mut self, key: K, env: Envelope<M>) {
        self.pool.entry(key).or_default().push(env);
    }

    /// Takes one buffered message for `key`, if any.
    pub fn take(&mut self, key: &K) -> Option<Envelope<M>> {
        let v = self.pool.get_mut(key)?;
        let env = v.pop();
        if v.is_empty() {
            self.pool.remove(key);
        }
        env
    }

    /// Blocking receive of a message with the wanted key: drains `ctx`
    /// until `classify` maps an arrival to `key`, buffering everything
    /// else. Works on any [`Comm`] backend.
    pub fn recv_key<C, F>(&mut self, ctx: &C, key: &K, classify: F) -> Envelope<M>
    where
        C: Comm<M>,
        F: Fn(&M) -> K,
    {
        if let Some(env) = self.take(key) {
            return env;
        }
        loop {
            let env = ctx.recv();
            let k = classify(&env.msg);
            if &k == key {
                return env;
            }
            self.deposit(k, env);
        }
    }

    /// Number of buffered messages (diagnostics).
    pub fn buffered(&self) -> usize {
        self.pool.values().map(|v| v.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass() {
        // Each rank sends its rank to the next; sum arrives intact.
        let results = run_spmd::<usize, usize, _>(4, |ctx| {
            let next = (ctx.rank() + 1) % ctx.n_procs();
            ctx.send(next, ctx.rank() * 10);
            let env = ctx.recv();
            assert_eq!(env.from, (ctx.rank() + ctx.n_procs() - 1) % ctx.n_procs());
            env.msg
        });
        assert_eq!(results, vec![30, 0, 10, 20]);
    }

    #[test]
    fn self_send_works() {
        let results = run_spmd::<&'static str, String, _>(2, |ctx| {
            ctx.send(ctx.rank(), "hello");
            let env = ctx.recv();
            format!("{}:{}", env.from, env.msg)
        });
        assert_eq!(results, vec!["0:hello", "1:hello"]);
    }

    #[test]
    fn single_proc_spmd() {
        let results = run_spmd::<(), usize, _>(1, |ctx| ctx.n_procs());
        assert_eq!(results, vec![1]);
    }

    #[test]
    fn tagged_mailbox_buffers_out_of_order() {
        // Rank 1 sends keys 5 then 3; rank 0 asks for 3 first.
        let results = run_spmd::<u32, Vec<u32>, _>(2, |ctx| {
            if ctx.rank() == 1 {
                ctx.send(0, 5);
                ctx.send(0, 3);
                return vec![];
            }
            let mut mb = TaggedMailbox::<u32, u32>::new();
            let a = mb.recv_key(&ctx, &3, |&m| m);
            let b = mb.recv_key(&ctx, &5, |&m| m);
            assert_eq!(mb.buffered(), 0);
            vec![a.msg, b.msg]
        });
        assert_eq!(results[0], vec![3, 5]);
    }

    #[test]
    fn try_recv_nonblocking() {
        let results = run_spmd::<u8, bool, _>(2, |ctx| {
            if ctx.rank() == 0 {
                // Just exercise the non-blocking path (arrival timing is
                // nondeterministic here).
                let _ = ctx.try_recv();
                ctx.send(1, 7);
                true
            } else {
                let env = ctx.recv();
                env.msg == 7
            }
        });
        assert!(results.iter().all(|&b| b));
    }

    #[test]
    fn collective_barrier_and_broadcast() {
        let results = run_spmd::<u64, u64, _>(4, |ctx| {
            collective::barrier(&ctx, 0);
            let v = collective::broadcast(&ctx, 2, if ctx.rank() == 2 { Some(99) } else { None });
            collective::barrier(&ctx, 0);
            v
        });
        assert_eq!(results, vec![99; 4]);
    }

    #[test]
    fn collective_all_reduce_sum() {
        let results = run_spmd::<u64, u64, _>(5, |ctx| {
            collective::all_reduce(&ctx, ctx.rank() as u64 + 1, |a, b| a + b)
        });
        assert_eq!(results, vec![15; 5]);
    }

    #[test]
    fn collective_single_proc_degenerate() {
        let results = run_spmd::<u64, u64, _>(1, |ctx| {
            collective::barrier(&ctx, 0);
            collective::all_reduce(&ctx, 7, |a, b| a + b)
        });
        assert_eq!(results, vec![7]);
    }

    #[test]
    fn random_all_to_all_storm() {
        // Every rank sends a deterministic pseudo-random number of tagged
        // messages to every other; receivers demand them in ascending tag
        // order, exercising the out-of-order pool hard.
        let p = 4usize;
        let results = run_spmd::<(u32, u32), u64, _>(p, |ctx| {
            let me = ctx.rank();
            // Deterministic per-pair counts: count(a, b) = (a*7 + b*3) % 5 + 1.
            let count = |a: usize, b: usize| ((a * 7 + b * 3) % 5 + 1) as u32;
            for q in 0..p {
                if q == me {
                    continue;
                }
                for tag in 0..count(me, q) {
                    ctx.send(q, (tag, (me as u32 + 1) * 100 + tag));
                }
            }
            // Receive from everyone, demanding tags in order.
            let mut mb = TaggedMailbox::<(usize, u32), (u32, u32)>::new();
            let mut sum = 0u64;
            for q in 0..p {
                if q == me {
                    continue;
                }
                for tag in 0..count(q, me) {
                    // Key = (sender, tag): drain until it shows up.
                    let env = loop {
                        if let Some(e) = mb.take(&(q, tag)) {
                            break e;
                        }
                        let e = ctx.recv();
                        let key = (e.from, e.msg.0);
                        if key == (q, tag) {
                            break e;
                        }
                        mb.deposit(key, e);
                    };
                    assert_eq!(env.msg.1, (q as u32 + 1) * 100 + tag);
                    sum += env.msg.1 as u64;
                }
            }
            assert_eq!(mb.buffered(), 0);
            sum
        });
        // Deterministic totals: recompute expected per rank.
        let count = |a: usize, b: usize| ((a * 7 + b * 3) % 5 + 1) as u64;
        for (me, &got) in results.iter().enumerate() {
            let mut expect = 0u64;
            for q in 0..p {
                if q == me {
                    continue;
                }
                for tag in 0..count(q, me) {
                    expect += (q as u64 + 1) * 100 + tag;
                }
            }
            assert_eq!(got, expect, "rank {me}");
        }
    }

    #[test]
    fn many_messages_fifo_per_pair() {
        let results = run_spmd::<u32, Vec<u32>, _>(2, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..100 {
                    ctx.send(1, i);
                }
                vec![]
            } else {
                (0..100).map(|_| ctx.recv().msg).collect()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn send_lossy_false_after_peer_exit() {
        // Rank 1 exits immediately; rank 0 keeps lossy-sending until the
        // peer's mailbox closes. Must terminate with a `false` rather than
        // a panic.
        let results = run_spmd::<u32, bool, _>(2, |ctx| {
            if ctx.rank() == 1 {
                return true;
            }
            loop {
                if !ctx.send_lossy(1, 42) {
                    return true;
                }
                std::thread::yield_now();
            }
        });
        assert_eq!(results, vec![true, true]);
    }

    #[test]
    fn send_panic_carries_rank_context() {
        let caught = std::panic::catch_unwind(|| {
            run_spmd::<u32, (), _>(2, |ctx| {
                if ctx.rank() == 1 {
                    return;
                }
                // Keep (non-lossy) sending until the peer exits: the panic
                // message must name both ranks.
                loop {
                    ctx.send(1, 1);
                    std::thread::yield_now();
                }
            });
        });
        let payload = caught.expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("rank 0 send to rank 1"),
            "panic message missing context: {msg:?}"
        );
    }
}
