//! Task cost evaluation against the machine's BLAS time model.
//!
//! The mapper prices every block computation of Fig. 1 with the calibrated
//! polynomial model — this is what lets the static schedule anticipate the
//! non-linear BLAS-3 efficiency ("workload encompasses block computations
//! [whose] efficiencies are far from being linear in terms of number of
//! operations").

use pastix_kernels::model::KernelClass;
use pastix_machine::{task_kind, MachineModel};
use pastix_symbolic::SymbolMatrix;

/// Predicted seconds of `COMP1D(k)`: factor the diagonal block, solve and
/// scale the whole off-diagonal panel, and compute every compacted
/// contribution `C_[j] = L_[j]k · F_jᵀ`.
pub fn comp1d_cost(sym: &SymbolMatrix, k: usize, m: &MachineModel) -> f64 {
    let scale = m.task_scale(task_kind::COMP1D);
    let w = sym.cblks[k].width();
    let offs = sym.off_bloks_of(k);
    let h: usize = offs.iter().map(|b| b.nrows()).sum();
    let mut t = m.kernel_time(KernelClass::FactorLdlt, w, w, w);
    if h > 0 {
        t += m.kernel_time(KernelClass::TrsmPanel, h, w, w);
        t += m.kernel_time(KernelClass::ScaleCols, h, w, 1);
        // Contributions, computed on compacted sets of blocks: for each
        // off-diagonal block j, one GEMM with all rows from j downward.
        let mut rows_below = h;
        for b in offs {
            let hj = b.nrows();
            t += m.kernel_time(KernelClass::GemmNt, rows_below, hj, w);
            rows_below -= hj;
        }
    }
    t * scale
}

/// Predicted seconds of `FACTOR(k)` (diagonal block factorization).
pub fn factor_cost(sym: &SymbolMatrix, k: usize, m: &MachineModel) -> f64 {
    let w = sym.cblks[k].width();
    m.kernel_time(KernelClass::FactorLdlt, w, w, w) * m.task_scale(task_kind::FACTOR)
}

/// Predicted seconds of `BDIV(j, k)` (panel solve of one off-diagonal
/// block, including the `F = L·D` scaling).
pub fn bdiv_cost(sym: &SymbolMatrix, k: usize, blok: usize, m: &MachineModel) -> f64 {
    let w = sym.cblks[k].width();
    let hj = sym.bloks[blok].nrows();
    (m.kernel_time(KernelClass::TrsmPanel, hj, w, w)
        + m.kernel_time(KernelClass::ScaleCols, hj, w, 1))
        * m.task_scale(task_kind::BDIV)
}

/// Predicted seconds of `BMOD(i, j, k)` (one block contribution product).
pub fn bmod_cost(sym: &SymbolMatrix, k: usize, blok_row: usize, blok_col: usize, m: &MachineModel) -> f64 {
    let w = sym.cblks[k].width();
    let hr = sym.bloks[blok_row].nrows();
    let hc = sym.bloks[blok_col].nrows();
    m.kernel_time(KernelClass::GemmNt, hr, hc, w) * m.task_scale(task_kind::BMOD)
}

/// Total predicted sequential factorization time (sum of all `COMP1D`
/// costs): the `P = 1` reference the speedup curves divide by.
pub fn sequential_cost(sym: &SymbolMatrix, m: &MachineModel) -> f64 {
    (0..sym.n_cblks()).map(|k| comp1d_cost(sym, k, m)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbol() -> SymbolMatrix {
        pastix_testsupport::grid_symbol(8, 8, 8)
    }

    #[test]
    fn costs_positive_and_consistent() {
        let sym = symbol();
        let m = MachineModel::sp2(4);
        for k in 0..sym.n_cblks() {
            let c = comp1d_cost(&sym, k, &m);
            assert!(c > 0.0);
            // COMP1D covers at least the diagonal factorization.
            assert!(c >= factor_cost(&sym, k, &m));
        }
    }

    #[test]
    fn sequential_is_sum() {
        let sym = symbol();
        let m = MachineModel::sp2(4);
        let total = sequential_cost(&sym, &m);
        let manual: f64 = (0..sym.n_cblks()).map(|k| comp1d_cost(&sym, k, &m)).sum();
        assert_eq!(total, manual);
    }

    #[test]
    fn calibration_rescales_kinds_relatively() {
        use pastix_machine::{task_kind, TaskCalibration};
        let sym = symbol();
        let base = MachineModel::sp2(4);
        // BMOD measured 3x slower per model-second than FACTOR/BDIV/COMP1D.
        let mut rates = [1e9; task_kind::COUNT];
        rates[task_kind::BMOD] = 3e9;
        let cal = base.clone().with_task_calibration(TaskCalibration { ns_per_cost: rates });
        let k = (0..sym.n_cblks())
            .find(|&k| !sym.off_bloks_of(k).is_empty())
            .unwrap();
        let b = sym.cblks[k].blok_start + 1;
        let rel = cal.task_scale(task_kind::BMOD) / cal.task_scale(task_kind::FACTOR);
        assert!(rel > 1.0);
        let ratio_base = bmod_cost(&sym, k, b, b, &base) / factor_cost(&sym, k, &base);
        let ratio_cal = bmod_cost(&sym, k, b, b, &cal) / factor_cost(&sym, k, &cal);
        assert!(
            (ratio_cal / ratio_base - rel).abs() < 1e-9,
            "bmod/factor cost ratio must move by exactly the relative factor"
        );
    }

    #[test]
    fn bigger_blocks_cost_more() {
        let sym = symbol();
        let m = MachineModel::sp2(4);
        // Find a cblk with at least one off-diagonal block.
        let k = (0..sym.n_cblks())
            .find(|&k| !sym.off_bloks_of(k).is_empty())
            .unwrap();
        let b = sym.cblks[k].blok_start + 1;
        assert!(bdiv_cost(&sym, k, b, &m) > 0.0);
        assert!(bmod_cost(&sym, k, b, b, &m) > 0.0);
    }
}
