//! Candidate-processor assignment: recursive proportional mapping with the
//! mixed 1D/2D switch.
//!
//! This is the paper's partitioning phase: *"For each supernode, starting
//! by the root, we assign it to a set of candidate processors Q. Given the
//! number of such candidate processors and the cost of the supernode, we
//! choose a 1D or 2D distribution strategy. Then, recursively, each subtree
//! is assigned to a subset of Q proportionally to its workload. [...] this
//! strategy leads to a 2D distribution for the uppermost supernodes and to
//! a 1D for the others. Moreover, we allow a candidate processor to be in
//! two sets of candidate processors for two subtrees having the same
//! father"* — hence the fractional interval bounds below.

use crate::cost::comp1d_cost;
use pastix_machine::MachineModel;
use pastix_symbolic::{SymbolMatrix, NO_PARENT};

/// Distribution strategy knob (ablation A1 of DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistStrategy {
    /// The paper's contribution: 2D for the uppermost supernodes, 1D below.
    Mixed1d2d,
    /// 1D everywhere (the authors' EuroPAR'99 baseline).
    Only1d,
}

/// Per-supernode candidate information (on the pre-split symbol).
#[derive(Debug, Clone)]
pub struct CandidateInfo {
    /// Fractional candidate interval `[lo, hi)` in processor space.
    pub lo: Vec<f64>,
    /// Upper fractional bound.
    pub hi: Vec<f64>,
    /// 2D distribution chosen for this supernode.
    pub is_2d: Vec<bool>,
    /// Depth in the block elimination tree (roots at 0).
    pub depth: Vec<u32>,
    /// Cost of the supernode's own computations (model seconds).
    pub cblk_cost: Vec<f64>,
    /// Total model seconds of the subtree rooted here.
    pub subtree_cost: Vec<f64>,
}

impl CandidateInfo {
    /// Integer candidate processor range `[first, last]` of supernode `k`.
    pub fn proc_range(&self, k: usize, n_procs: usize) -> (u32, u32) {
        let first = self.lo[k].floor().max(0.0) as u32;
        let last = (self.hi[k].ceil() as i64 - 1)
            .clamp(first as i64, n_procs as i64 - 1) as u32;
        (first, last)
    }

    /// Fractional width of the candidate set.
    #[inline]
    pub fn cand_width(&self, k: usize) -> f64 {
        self.hi[k] - self.lo[k]
    }
}

/// Options of the proportional mapping.
#[derive(Debug, Clone)]
pub struct MappingOptions {
    /// 2D is chosen when the candidate set holds at least this many
    /// processors (fractional measure) …
    pub procs_2d_min: f64,
    /// … and the supernode is at least this many columns wide.
    pub width_2d_min: usize,
    /// Distribution strategy.
    pub strategy: DistStrategy,
}

impl Default for MappingOptions {
    fn default() -> Self {
        Self {
            procs_2d_min: 4.0,
            width_2d_min: 128,
            strategy: DistStrategy::Mixed1d2d,
        }
    }
}

/// Runs the recursive top-down proportional mapping over the block
/// elimination tree of `sym` (the **pre-split** symbol).
pub fn proportional_mapping(
    sym: &SymbolMatrix,
    machine: &MachineModel,
    opts: &MappingOptions,
) -> CandidateInfo {
    let ns = sym.n_cblks();
    let parent = sym.block_etree();
    let mut cblk_cost = vec![0.0f64; ns];
    for k in 0..ns {
        cblk_cost[k] = comp1d_cost(sym, k, machine);
    }
    // Subtree costs (children have smaller ids than parents).
    let mut subtree_cost = cblk_cost.clone();
    for k in 0..ns {
        if parent[k] != NO_PARENT {
            subtree_cost[parent[k] as usize] += subtree_cost[k];
        }
    }
    // Children lists and depths.
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); ns];
    let mut roots: Vec<u32> = Vec::new();
    for k in 0..ns {
        match parent[k] {
            NO_PARENT => roots.push(k as u32),
            p => children[p as usize].push(k as u32),
        }
    }
    let mut depth = vec![0u32; ns];
    for k in (0..ns).rev() {
        for &c in &children[k] {
            depth[c as usize] = depth[k] + 1;
        }
    }

    let p_total = machine.n_procs as f64;
    let mut lo = vec![0.0f64; ns];
    let mut hi = vec![p_total; ns];
    // Partition [0, P) among the roots proportionally, then walk down.
    let root_total: f64 = roots.iter().map(|&r| subtree_cost[r as usize]).sum();
    let mut cursor = 0.0f64;
    for &r in &roots {
        let share = if root_total > 0.0 {
            p_total * subtree_cost[r as usize] / root_total
        } else {
            p_total / roots.len() as f64
        };
        lo[r as usize] = cursor;
        hi[r as usize] = (cursor + share).min(p_total);
        cursor += share;
    }
    // Top-down: supernode ids descend from parents to children only through
    // the children lists, so iterate ids in reverse (parents first).
    for k in (0..ns).rev() {
        let (klo, khi) = (lo[k], hi[k]);
        let kids = &children[k];
        if kids.is_empty() {
            continue;
        }
        let total: f64 = kids.iter().map(|&c| subtree_cost[c as usize]).sum();
        let mut cur = klo;
        for &c in kids {
            let share = if total > 0.0 {
                (khi - klo) * subtree_cost[c as usize] / total
            } else {
                (khi - klo) / kids.len() as f64
            };
            lo[c as usize] = cur;
            hi[c as usize] = (cur + share).min(khi);
            cur += share;
        }
    }
    // Degenerate guard: every interval must keep positive measure.
    for k in 0..ns {
        if hi[k] - lo[k] < 1e-9 {
            hi[k] = (lo[k] + 1e-9).min(p_total);
            if hi[k] - lo[k] < 1e-9 {
                lo[k] = p_total - 1e-9;
                hi[k] = p_total;
            }
        }
    }
    // 1D/2D decision.
    let mut is_2d = vec![false; ns];
    if opts.strategy == DistStrategy::Mixed1d2d {
        for k in 0..ns {
            let width = sym.cblks[k].width();
            is_2d[k] = (hi[k] - lo[k]) >= opts.procs_2d_min && width >= opts.width_2d_min;
        }
    }
    CandidateInfo {
        lo,
        hi,
        is_2d,
        depth,
        cblk_cost,
        subtree_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbol(nx: usize, ny: usize) -> SymbolMatrix {
        // Nested dissection gives the block elimination tree real branching
        // (identity ordering on a grid yields a band matrix whose block
        // etree is a chain, which would make these tests vacuous).
        pastix_testsupport::grid_symbol(nx, ny, 16)
    }

    #[test]
    fn intervals_nested_and_positive() {
        let sym = symbol(12, 12);
        let m = MachineModel::sp2(8);
        let c = proportional_mapping(&sym, &m, &MappingOptions::default());
        let parent = sym.block_etree();
        for k in 0..sym.n_cblks() {
            assert!(c.hi[k] > c.lo[k], "empty interval at {k}");
            assert!(c.lo[k] >= -1e-12 && c.hi[k] <= 8.0 + 1e-12);
            if parent[k] != NO_PARENT {
                let p = parent[k] as usize;
                assert!(c.lo[k] >= c.lo[p] - 1e-9 && c.hi[k] <= c.hi[p] + 1e-9, "child interval escapes parent");
            }
        }
    }

    #[test]
    fn roots_cover_everything_and_get_full_machine() {
        let sym = symbol(10, 10);
        let m = MachineModel::sp2(16);
        let c = proportional_mapping(&sym, &m, &MappingOptions::default());
        let parent = sym.block_etree();
        let root = (0..sym.n_cblks()).find(|&k| parent[k] == NO_PARENT).unwrap();
        // Connected graph: single root spanning all processors.
        assert!(c.lo[root] < 1e-9);
        assert!((c.hi[root] - 16.0).abs() < 1e-9);
        assert_eq!(c.depth[root], 0);
    }

    #[test]
    fn two_d_only_at_top_when_mixed() {
        let sym = symbol(24, 24);
        let m = MachineModel::sp2(16);
        let opts = MappingOptions {
            procs_2d_min: 2.0,
            width_2d_min: 8,
            strategy: DistStrategy::Mixed1d2d,
        };
        let c = proportional_mapping(&sym, &m, &opts);
        // At least one supernode should go 2D on this size, and every 2D
        // supernode must be at least as shallow as the deepest 1D one...
        // more precisely: 2D implies wide candidate set.
        let any2d = c.is_2d.iter().any(|&b| b);
        assert!(any2d, "expected some 2D supernodes");
        for k in 0..sym.n_cblks() {
            if c.is_2d[k] {
                assert!(c.cand_width(k) >= 2.0 - 1e-9);
                assert!(sym.cblks[k].width() >= 8);
            }
        }
    }

    #[test]
    fn only1d_strategy_disables_2d() {
        let sym = symbol(20, 20);
        let m = MachineModel::sp2(32);
        let opts = MappingOptions {
            strategy: DistStrategy::Only1d,
            procs_2d_min: 1.0,
            width_2d_min: 1,
        };
        let c = proportional_mapping(&sym, &m, &opts);
        assert!(c.is_2d.iter().all(|&b| !b));
    }

    #[test]
    fn proc_range_conversion() {
        let sym = symbol(6, 6);
        let m = MachineModel::sp2(4);
        let c = proportional_mapping(&sym, &m, &MappingOptions::default());
        for k in 0..sym.n_cblks() {
            let (f, l) = c.proc_range(k, 4);
            assert!(f <= l && (l as usize) < 4);
        }
    }

    #[test]
    fn sibling_intervals_share_boundary_processor() {
        // The defining feature: sibling subtree intervals meet at a
        // fractional point, so the straddled processor belongs to both
        // integer candidate sets.
        let sym = symbol(16, 16);
        let m = MachineModel::sp2(8);
        let c = proportional_mapping(&sym, &m, &MappingOptions::default());
        let parent = sym.block_etree();
        let mut shared = false;
        for k in 0..sym.n_cblks() {
            for k2 in (k + 1)..sym.n_cblks() {
                if parent[k] == parent[k2] && parent[k] != NO_PARENT {
                    let (f1, l1) = c.proc_range(k, 8);
                    let (f2, l2) = c.proc_range(k2, 8);
                    if f1.max(f2) <= l1.min(l2) {
                        shared = true;
                    }
                }
            }
        }
        // Not guaranteed for every graph, but overwhelmingly likely here.
        assert!(shared, "no boundary processor shared between siblings");
    }
}
