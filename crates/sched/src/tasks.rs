//! The block-computation task graph.
//!
//! Tasks are the four types of Fig. 1 — `COMP1D(k)` for 1D-distributed
//! column blocks, and `FACTOR(k)` / `BDIV(j,k)` / `BMOD(i,j,k)` for
//! 2D-distributed ones — built over the **split** symbol matrix, each task
//! inheriting the candidate processors of the supernode it comes from.
//! Edges carry the number of scalars that must move when producer and
//! consumer land on different processors (factor panels for the intra-2D
//! dependencies, contribution blocks for the fan-in updates).

use crate::candidates::CandidateInfo;
use crate::cost::{bdiv_cost, bmod_cost, comp1d_cost, factor_cost};
use pastix_machine::MachineModel;
use pastix_symbolic::{SplitSymbol, SymbolMatrix};

/// One block computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Update and compute all contributions for a 1D column block.
    Comp1d {
        /// Column block (split symbol index).
        cblk: u32,
    },
    /// Factorize the diagonal block of a 2D column block.
    Factor {
        /// Column block.
        cblk: u32,
    },
    /// Solve one off-diagonal block against the factored diagonal.
    Bdiv {
        /// Column block.
        cblk: u32,
        /// Global blok index (within the split symbol).
        blok: u32,
    },
    /// Compute the contribution `C = L_i · F_jᵀ` of one block pair.
    Bmod {
        /// Source column block.
        cblk: u32,
        /// Global blok index of the row block (`i`).
        blok_row: u32,
        /// Global blok index of the column block (`j`), `≤ blok_row`.
        blok_col: u32,
    },
}

impl TaskKind {
    /// The column block this task belongs to.
    pub fn cblk(&self) -> u32 {
        match *self {
            TaskKind::Comp1d { cblk }
            | TaskKind::Factor { cblk }
            | TaskKind::Bdiv { cblk, .. }
            | TaskKind::Bmod { cblk, .. } => cblk,
        }
    }
}

/// The full task graph over the split symbol.
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// The split symbol and its mapping to original supernodes.
    pub split: SplitSymbol,
    /// Task kinds, ids ascending with column block.
    pub kinds: Vec<TaskKind>,
    /// Model cost (seconds) per task.
    pub cost: Vec<f64>,
    /// Priority = depth of the originating supernode in the block
    /// elimination tree; *deeper (lower in the tree) runs first*.
    pub priority: Vec<u32>,
    /// Candidate processor range `[first, last]` per task.
    pub cand: Vec<(u32, u32)>,
    /// CSR of incoming edges: producers and the scalars they ship.
    pub in_ptr: Vec<u32>,
    /// Edge producers (parallel to `in_scalars`).
    pub in_src: Vec<u32>,
    /// Scalars per incoming edge.
    pub in_scalars: Vec<u32>,
    /// CSR of outgoing edges (consumer task ids).
    pub out_ptr: Vec<u32>,
    /// Edge consumers.
    pub out_dst: Vec<u32>,
    /// Per split cblk: the `Comp1d` or `Factor` task id.
    pub head_task_of_cblk: Vec<u32>,
    /// Per global blok: the `Bdiv` task id (`u32::MAX` when none).
    pub bdiv_task_of_blok: Vec<u32>,
    /// Per split cblk: first `Bmod` task id for 2D column blocks
    /// (`u32::MAX` for 1D). `BMOD` of off-block pair `(r, c)` (indices into
    /// the off-diagonal block list, `c ≤ r`) has id
    /// `bmod_base[k] + r(r+1)/2 + c`.
    pub bmod_base: Vec<u32>,
    /// Scalars of the region a task owns (used for fan-in AUB sizing).
    pub region_scalars: Vec<u64>,
}

impl TaskGraph {
    /// Number of tasks.
    #[inline]
    pub fn n_tasks(&self) -> usize {
        self.kinds.len()
    }

    /// Incoming edges of task `t` as `(producer, scalars)` pairs.
    pub fn in_edges(&self, t: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.in_ptr[t] as usize;
        let hi = self.in_ptr[t + 1] as usize;
        self.in_src[lo..hi].iter().copied().zip(self.in_scalars[lo..hi].iter().copied())
    }

    /// Outgoing consumers of task `t`.
    pub fn out_edges(&self, t: usize) -> &[u32] {
        &self.out_dst[self.out_ptr[t] as usize..self.out_ptr[t + 1] as usize]
    }

    /// Total predicted work (sum of task costs).
    pub fn total_cost(&self) -> f64 {
        self.cost.iter().sum()
    }
}

/// Finds the blok of column block `k` whose row interval contains
/// `[frow, lrow]` (delegates to [`SymbolMatrix::covering_blok`]).
pub fn find_covering_blok(sym: &SymbolMatrix, k: usize, frow: u32, lrow: u32) -> usize {
    sym.covering_blok(k, frow, lrow)
}

/// Builds the task graph from a split symbol, the candidate info of the
/// original supernodes, and the machine model.
pub fn build_task_graph(
    split: SplitSymbol,
    cand_info: &CandidateInfo,
    machine: &MachineModel,
) -> TaskGraph {
    let sym = &split.symbol;
    let nsn = sym.n_cblks();
    let n_procs = machine.n_procs;

    let mut kinds: Vec<TaskKind> = Vec::new();
    let mut cost: Vec<f64> = Vec::new();
    let mut priority: Vec<u32> = Vec::new();
    let mut cand: Vec<(u32, u32)> = Vec::new();
    let mut head_task_of_cblk = vec![u32::MAX; nsn];
    let mut bdiv_task_of_blok = vec![u32::MAX; sym.bloks.len()];
    // For 2D cblks: bmod task ids per pair, indexed on the fly.
    // bmod_ids[cblk] maps (r_idx, c_idx) pair order to task id; we store
    // pair ids in row-major lower order as created.
    let mut bmod_base = vec![u32::MAX; nsn];

    for t in 0..nsn {
        let orig = split.orig_cblk[t] as usize;
        let is2d = cand_info.is_2d[orig];
        let pr = cand_info.depth[orig];
        let (cf, cl) = cand_info.proc_range(orig, n_procs);
        let offs = sym.off_bloks_of(t).len();
        if !is2d {
            head_task_of_cblk[t] = kinds.len() as u32;
            kinds.push(TaskKind::Comp1d { cblk: t as u32 });
            cost.push(comp1d_cost(sym, t, machine));
            priority.push(pr);
            cand.push((cf, cl));
        } else {
            head_task_of_cblk[t] = kinds.len() as u32;
            kinds.push(TaskKind::Factor { cblk: t as u32 });
            cost.push(factor_cost(sym, t, machine));
            priority.push(pr);
            cand.push((cf, cl));
            let blok_start = sym.cblks[t].blok_start;
            for o in 0..offs {
                let blok = (blok_start + 1 + o) as u32;
                bdiv_task_of_blok[blok as usize] = kinds.len() as u32;
                kinds.push(TaskKind::Bdiv { cblk: t as u32, blok });
                cost.push(bdiv_cost(sym, t, blok as usize, machine));
                priority.push(pr);
                cand.push((cf, cl));
            }
            bmod_base[t] = kinds.len() as u32;
            for r in 0..offs {
                for c in 0..=r {
                    let br = (blok_start + 1 + r) as u32;
                    let bc = (blok_start + 1 + c) as u32;
                    kinds.push(TaskKind::Bmod {
                        cblk: t as u32,
                        blok_row: br,
                        blok_col: bc,
                    });
                    cost.push(bmod_cost(sym, t, br as usize, bc as usize, machine));
                    priority.push(pr);
                    cand.push((cf, cl));
                }
            }
        }
    }
    let n_tasks = kinds.len();

    // Pair index helper for 2D bmods: pairs stored as r-major lower
    // triangle: id = base + r(r+1)/2 + c.
    let bmod_task = |t: usize, r: usize, c: usize| -> u32 {
        bmod_base[t] + (r * (r + 1) / 2 + c) as u32
    };

    // Edge list: (src, dst, scalars).
    let mut edges: Vec<(u32, u32, u32)> = Vec::new();
    for t in 0..nsn {
        let orig = split.orig_cblk[t] as usize;
        let is2d = cand_info.is_2d[orig];
        let w = sym.cblks[t].width();
        let blok_start = sym.cblks[t].blok_start;
        let offs: Vec<(u32, u32, u32)> = sym
            .off_bloks_of(t)
            .iter()
            .map(|b| (b.frow, b.lrow, b.fcblk))
            .collect();
        // Intra-2D edges.
        if is2d {
            let factor_id = head_task_of_cblk[t];
            for (o, _) in offs.iter().enumerate() {
                let bdiv_id = bdiv_task_of_blok[blok_start + 1 + o];
                edges.push((factor_id, bdiv_id, (w * w) as u32));
            }
            for r in 0..offs.len() {
                let hr = (offs[r].1 - offs[r].0 + 1) as usize;
                for c in 0..=r {
                    let hc = (offs[c].1 - offs[c].0 + 1) as usize;
                    let bm = bmod_task(t, r, c);
                    let bdiv_r = bdiv_task_of_blok[blok_start + 1 + r];
                    let bdiv_c = bdiv_task_of_blok[blok_start + 1 + c];
                    edges.push((bdiv_r, bm, (hr * w) as u32));
                    if c != r {
                        edges.push((bdiv_c, bm, (hc * w) as u32));
                    }
                }
            }
        }
        // Contribution edges (fan-in updates to ancestor column blocks).
        for c in 0..offs.len() {
            let (fc, lc, kc) = offs[c];
            let hc = (lc - fc + 1) as usize;
            let target_cblk = kc as usize;
            let target_orig = split.orig_cblk[target_cblk] as usize;
            let target_2d = cand_info.is_2d[target_orig];
            for r in c..offs.len() {
                let (fr, lr, _) = offs[r];
                let hr = (lr - fr + 1) as usize;
                let producer: u32 = if is2d {
                    bmod_task(t, r, c)
                } else {
                    head_task_of_cblk[t]
                };
                let consumer: u32 = if !target_2d {
                    head_task_of_cblk[target_cblk]
                } else {
                    let tb = find_covering_blok(sym, target_cblk, fr, lr);
                    if tb == sym.cblks[target_cblk].blok_start {
                        // Diagonal block of the target → FACTOR.
                        head_task_of_cblk[target_cblk]
                    } else {
                        bdiv_task_of_blok[tb]
                    }
                };
                edges.push((producer, consumer, (hr * hc) as u32));
            }
        }
    }

    // Merge duplicate (src, dst) edges, summing scalars.
    edges.sort_unstable_by_key(|&(s, d, _)| ((s as u64) << 32) | d as u64);
    let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(edges.len());
    for e in edges {
        match merged.last_mut() {
            Some(last) if last.0 == e.0 && last.1 == e.1 => {
                last.2 = last.2.saturating_add(e.2);
            }
            _ => merged.push(e),
        }
    }

    // CSR both ways.
    let mut out_ptr = vec![0u32; n_tasks + 1];
    for &(s, _, _) in &merged {
        out_ptr[s as usize + 1] += 1;
    }
    for i in 0..n_tasks {
        out_ptr[i + 1] += out_ptr[i];
    }
    let mut out_dst = vec![0u32; merged.len()];
    {
        let mut fill = out_ptr.clone();
        for &(s, d, _) in &merged {
            out_dst[fill[s as usize] as usize] = d;
            fill[s as usize] += 1;
        }
    }
    let mut in_ptr = vec![0u32; n_tasks + 1];
    for &(_, d, _) in &merged {
        in_ptr[d as usize + 1] += 1;
    }
    for i in 0..n_tasks {
        in_ptr[i + 1] += in_ptr[i];
    }
    let mut in_src = vec![0u32; merged.len()];
    let mut in_scalars = vec![0u32; merged.len()];
    {
        let mut fill = in_ptr.clone();
        for &(s, d, sc) in &merged {
            let pos = fill[d as usize] as usize;
            in_src[pos] = s;
            in_scalars[pos] = sc;
            fill[d as usize] += 1;
        }
    }

    // Region sizes for AUB statistics.
    let mut region_scalars = vec![0u64; n_tasks];
    for (tid, kind) in kinds.iter().enumerate() {
        region_scalars[tid] = match *kind {
            TaskKind::Comp1d { cblk } => {
                let w = sym.cblks[cblk as usize].width() as u64;
                let h = sym.offrows(cblk as usize) as u64;
                w * (w + h)
            }
            TaskKind::Factor { cblk } => {
                let w = sym.cblks[cblk as usize].width() as u64;
                w * w
            }
            TaskKind::Bdiv { cblk, blok } => {
                let w = sym.cblks[cblk as usize].width() as u64;
                let h = sym.bloks[blok as usize].nrows() as u64;
                w * h
            }
            TaskKind::Bmod { cblk, blok_row, blok_col } => {
                let _ = cblk;
                let hr = sym.bloks[blok_row as usize].nrows() as u64;
                let hc = sym.bloks[blok_col as usize].nrows() as u64;
                hr * hc
            }
        };
    }

    TaskGraph {
        split,
        kinds,
        cost,
        priority,
        cand,
        in_ptr,
        in_src,
        in_scalars,
        out_ptr,
        out_dst,
        head_task_of_cblk,
        bdiv_task_of_blok,
        bmod_base,
        region_scalars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{proportional_mapping, MappingOptions};
    use pastix_graph::{CsrGraph, Permutation};
    use pastix_symbolic::{analyze, split_symbol, AnalysisOptions};

    fn setup(nx: usize, procs: usize, block: usize, width2d: usize) -> (TaskGraph, MachineModel) {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..nx {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < nx {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let g = CsrGraph::from_edges(nx * nx, &e);
        let a = analyze(&g, &Permutation::identity(nx * nx), &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let mopts = MappingOptions {
            procs_2d_min: 2.0,
            width_2d_min: width2d,
            ..Default::default()
        };
        let cand = proportional_mapping(&a.symbol, &machine, &mopts);
        let split = split_symbol(&a.symbol, block);
        (build_task_graph(split, &cand, &machine), machine)
    }

    #[test]
    fn dag_edges_point_forward() {
        let (tg, _) = setup(12, 4, 8, 6);
        for t in 0..tg.n_tasks() {
            for (src, _) in tg.in_edges(t) {
                assert!((src as usize) < t, "edge {src} -> {t} not forward");
            }
        }
    }

    #[test]
    fn every_cblk_has_head_task() {
        let (tg, _) = setup(10, 4, 8, 6);
        for t in 0..tg.split.symbol.n_cblks() {
            assert_ne!(tg.head_task_of_cblk[t], u32::MAX);
        }
    }

    #[test]
    fn mixed_creates_2d_tasks() {
        let (tg, _) = setup(16, 8, 4, 4);
        let has_factor = tg.kinds.iter().any(|k| matches!(k, TaskKind::Factor { .. }));
        let has_bmod = tg.kinds.iter().any(|k| matches!(k, TaskKind::Bmod { .. }));
        assert!(has_factor && has_bmod, "expected 2D task types");
    }

    #[test]
    fn only_comp1d_when_width_threshold_huge() {
        let (tg, _) = setup(12, 4, 1000, 100_000);
        assert!(tg.kinds.iter().all(|k| matches!(k, TaskKind::Comp1d { .. })));
        // One task per cblk then.
        assert_eq!(tg.n_tasks(), tg.split.symbol.n_cblks());
    }

    #[test]
    fn costs_positive() {
        let (tg, _) = setup(12, 4, 8, 6);
        assert!(tg.cost.iter().all(|&c| c > 0.0));
        assert!(tg.total_cost() > 0.0);
    }

    #[test]
    fn find_covering_blok_roundtrip() {
        let (tg, _) = setup(10, 2, 6, 8);
        let sym = &tg.split.symbol;
        for k in 0..sym.n_cblks() {
            for (o, b) in sym.bloks_of(k).iter().enumerate() {
                let found = find_covering_blok(sym, k, b.frow, b.lrow);
                assert_eq!(found, sym.cblks[k].blok_start + o);
            }
        }
    }

    #[test]
    fn bdiv_tasks_depend_on_factor() {
        let (tg, _) = setup(16, 8, 4, 4);
        for t in 0..tg.n_tasks() {
            if let TaskKind::Bdiv { cblk, .. } = tg.kinds[t] {
                let factor_id = tg.head_task_of_cblk[cblk as usize];
                assert!(
                    tg.in_edges(t).any(|(s, _)| s == factor_id),
                    "BDIV {t} missing FACTOR dep"
                );
            }
        }
    }

    #[test]
    fn bmod_tasks_depend_on_their_bdivs() {
        let (tg, _) = setup(16, 8, 4, 4);
        for t in 0..tg.n_tasks() {
            if let TaskKind::Bmod { blok_row, blok_col, .. } = tg.kinds[t] {
                let br = tg.bdiv_task_of_blok[blok_row as usize];
                let bc = tg.bdiv_task_of_blok[blok_col as usize];
                assert!(tg.in_edges(t).any(|(s, _)| s == br));
                assert!(tg.in_edges(t).any(|(s, _)| s == bc));
            }
        }
    }

    #[test]
    fn region_scalars_match_symbol_dimensions() {
        let (tg, _) = setup(16, 8, 4, 4);
        let sym = &tg.split.symbol;
        for t in 0..tg.n_tasks() {
            let expect = match tg.kinds[t] {
                TaskKind::Comp1d { cblk } => {
                    let k = cblk as usize;
                    (sym.cblks[k].width() * (sym.cblks[k].width() + sym.offrows(k))) as u64
                }
                TaskKind::Factor { cblk } => {
                    let w = sym.cblks[cblk as usize].width() as u64;
                    w * w
                }
                TaskKind::Bdiv { cblk, blok } => {
                    (sym.cblks[cblk as usize].width() * sym.bloks[blok as usize].nrows()) as u64
                }
                TaskKind::Bmod { blok_row, blok_col, .. } => {
                    (sym.bloks[blok_row as usize].nrows() * sym.bloks[blok_col as usize].nrows()) as u64
                }
            };
            assert_eq!(tg.region_scalars[t], expect, "task {t}");
        }
    }

    #[test]
    fn edges_scalars_positive() {
        let (tg, _) = setup(12, 4, 8, 6);
        for t in 0..tg.n_tasks() {
            for (_, scalars) in tg.in_edges(t) {
                assert!(scalars > 0, "zero-size edge into {t}");
            }
        }
    }

    #[test]
    fn leaf_tasks_have_no_deps() {
        let (tg, _) = setup(10, 4, 8, 6);
        let n_leaf = (0..tg.n_tasks())
            .filter(|&t| tg.in_ptr[t] == tg.in_ptr[t + 1])
            .count();
        assert!(n_leaf > 0, "no dependency-free tasks");
    }
}
