//! Level-set/block schedule for the triangular **solve** DAG.
//!
//! The factorization's static schedule fixes cblk ownership; the solve
//! reuses that ownership (the factor panels already live there) but runs a
//! much lighter DAG: one forward task and one backward task per column
//! block, with an edge `fwd(k) → fwd(t)` whenever a blok of `k` faces `t`
//! (the fan-in update `x_t -= L_b·x_k`), the mirrored edge
//! `bwd(t) → bwd(k)`, and `fwd(k) → bwd(k)` tying the sweeps together.
//! Following Böhnlein et al. (arXiv:2503.05408) the DAG is layered into
//! level sets and list-scheduled against the per-processor execution order
//! the distributed solver actually uses — forward tasks in ascending cblk
//! order, then backward tasks in descending order — so the predicted
//! per-rank timelines are directly reconcilable against a solve trace with
//! `trace::report`, exactly like the factorization schedule.

use crate::greedy::Schedule;
use crate::tasks::TaskGraph;

/// The static solve schedule: owner, level, order and predicted timeline
/// of every forward/backward solve task.
///
/// Task ids: the forward solve of cblk `k` is task `k`; the backward solve
/// is task `n_cblks + k` (see [`SolveSchedule::fwd_task`] /
/// [`SolveSchedule::bwd_task`]).
#[derive(Debug, Clone)]
pub struct SolveSchedule {
    /// Number of processors scheduled for.
    pub n_procs: usize,
    /// Number of column blocks (`2 · n_cblks` tasks total).
    pub n_cblks: usize,
    /// Owning processor per task (forward and backward of a cblk share the
    /// owner the factorization schedule assigned it).
    pub task_proc: Vec<u32>,
    /// Level-set index per task (0 = no unsatisfied dependencies).
    pub level: Vec<u32>,
    /// Number of distinct level sets.
    pub n_levels: usize,
    /// Model cost per task (multiply–add count of the cblk's sweep step).
    pub cost: Vec<f64>,
    /// Predicted start time per task (cost units).
    pub start: Vec<f64>,
    /// Predicted end time per task (cost units).
    pub end: Vec<f64>,
    /// Per processor, solve task ids in execution order.
    pub proc_tasks: Vec<Vec<u32>>,
    /// Predicted parallel solve time (cost units).
    pub makespan: f64,
}

impl SolveSchedule {
    /// Task id of the forward solve of cblk `k`.
    #[inline]
    pub fn fwd_task(&self, k: usize) -> usize {
        k
    }

    /// Task id of the backward solve of cblk `k`.
    #[inline]
    pub fn bwd_task(&self, k: usize) -> usize {
        self.n_cblks + k
    }

    /// Total number of solve tasks (`2 · n_cblks`).
    #[inline]
    pub fn n_tasks(&self) -> usize {
        2 * self.n_cblks
    }

    /// Canonical byte serialization of the schedule's discrete decisions:
    /// processor count, cblk count, task ownership, level sets, and each
    /// processor's execution order. Predicted times are derived
    /// floating-point data and deliberately excluded — two runs produced
    /// the same solve schedule iff their canonical bytes are equal.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 8 * self.task_proc.len());
        out.extend_from_slice(&(self.n_procs as u64).to_le_bytes());
        out.extend_from_slice(&(self.n_cblks as u64).to_le_bytes());
        for &p in &self.task_proc {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &l in &self.level {
            out.extend_from_slice(&l.to_le_bytes());
        }
        for tasks in &self.proc_tasks {
            out.extend_from_slice(&(tasks.len() as u64).to_le_bytes());
            for &t in tasks {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        out
    }

    /// FNV-1a digest of [`canonical_bytes`](Self::canonical_bytes) — the
    /// fingerprint a serving trace is keyed by, mirroring
    /// [`Schedule::digest`].
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Builds the level-set solve schedule for the split symbol of `graph`,
/// inheriting cblk ownership from the factorization schedule `sched`.
pub fn solve_schedule(graph: &TaskGraph, sched: &Schedule) -> SolveSchedule {
    let sym = &graph.split.symbol;
    let ns = sym.cblks.len();
    let total = 2 * ns;

    // Ownership: the processor that factorized the cblk solves it.
    let mut task_proc = vec![0u32; total];
    for k in 0..ns {
        let p = sched.task_proc[graph.head_task_of_cblk[k] as usize];
        task_proc[k] = p;
        task_proc[ns + k] = p;
    }

    // Dependency edges, deduplicated per (source cblk, target cblk) pair —
    // several bloks of `k` can face the same `t` but carry one edge.
    // fwd(k) → fwd(t), bwd(t) → bwd(k), fwd(k) → bwd(k).
    let mut out = vec![Vec::new(); total];
    let mut n_deps = vec![0u32; total];
    let mut cost = vec![0.0f64; total];
    for k in 0..ns {
        let cb = &sym.cblks[k];
        let w = cb.width() as f64;
        // Triangular sweep of the w×w unit diagonal plus the D step.
        let mut madds = w * (w + 1.0) * 0.5;
        let mut last_t = usize::MAX;
        for b in cb.blok_start + 1..cb.blok_end {
            let blok = &sym.bloks[b];
            madds += blok.nrows() as f64 * w;
            let t = blok.fcblk as usize;
            if t == last_t {
                continue;
            }
            last_t = t;
            out[k].push(t as u32); // fwd(k) → fwd(t)
            n_deps[t] += 1;
            out[ns + t].push((ns + k) as u32); // bwd(t) → bwd(k)
            n_deps[ns + k] += 1;
        }
        out[k].push((ns + k) as u32); // fwd(k) → bwd(k)
        n_deps[ns + k] += 1;
        cost[k] = madds;
        cost[ns + k] = madds;
    }

    // Level sets: longest-path depth over the DAG. Forward tasks in
    // ascending cblk order then backward in descending order is a
    // topological order (fan-in edges always point to higher cblks).
    let mut level = vec![0u32; total];
    for t in (0..ns).chain((0..ns).rev().map(|k| ns + k)) {
        for &c in &out[t] {
            level[c as usize] = level[c as usize].max(level[t] + 1);
        }
    }
    let n_levels = level.iter().copied().max().unwrap_or(0) as usize + 1;

    // Per-processor execution order: exactly what the distributed solve
    // workers do — owned forward tasks ascending, then owned backward
    // tasks descending.
    let mut proc_tasks = vec![Vec::new(); sched.n_procs];
    for k in 0..ns {
        proc_tasks[task_proc[k] as usize].push(k as u32);
    }
    for k in (0..ns).rev() {
        proc_tasks[task_proc[ns + k] as usize].push((ns + k) as u32);
    }

    // List-schedule the fixed per-processor orders against the DAG for the
    // predicted timeline. Each pass completes at least one task because
    // the per-proc orders are subsequences of the topological order above.
    let mut start = vec![0.0f64; total];
    let mut end = vec![0.0f64; total];
    let mut ready = vec![0.0f64; total];
    let mut deps_left = n_deps;
    let mut proc_ptr = vec![0usize; sched.n_procs];
    let mut proc_free = vec![0.0f64; sched.n_procs];
    let mut completed = 0usize;
    while completed < total {
        let mut progressed = false;
        for p in 0..sched.n_procs {
            while proc_ptr[p] < proc_tasks[p].len() {
                let t = proc_tasks[p][proc_ptr[p]] as usize;
                if deps_left[t] > 0 {
                    break;
                }
                start[t] = proc_free[p].max(ready[t]);
                end[t] = start[t] + cost[t];
                proc_free[p] = end[t];
                for &c in &out[t] {
                    let c = c as usize;
                    deps_left[c] -= 1;
                    ready[c] = ready[c].max(end[t]);
                }
                proc_ptr[p] += 1;
                completed += 1;
                progressed = true;
            }
        }
        assert!(progressed, "solve schedule deadlocked — orders are not topological");
    }
    let makespan = proc_free.iter().copied().fold(0.0f64, f64::max);

    SolveSchedule {
        n_procs: sched.n_procs,
        n_cblks: ns,
        task_proc,
        level,
        n_levels,
        cost,
        start,
        end,
        proc_tasks,
        makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{map_and_schedule, DistStrategy, MappingOptions, SchedOptions};
    use pastix_graph::Permutation;
    use pastix_machine::MachineModel;
    use pastix_symbolic::{analyze, AnalysisOptions};

    fn grid_mapping(nx: usize, procs: usize) -> crate::Mapping {
        // Identity ordering (not ND): these tests want the band-matrix
        // chain etree, so only the grid graph itself is shared scaffolding.
        let g = pastix_testsupport::grid_graph(nx, nx);
        let a = analyze(&g, &Permutation::identity(nx * nx), &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let opts = SchedOptions {
            block_size: 8,
            mapping: MappingOptions {
                procs_2d_min: 2.0,
                width_2d_min: 8,
                strategy: DistStrategy::Mixed1d2d,
            },
            ..Default::default()
        };
        map_and_schedule(&a.symbol, &machine, &opts)
    }

    #[test]
    fn solve_schedule_is_consistent() {
        let m = grid_mapping(12, 4);
        let ss = solve_schedule(&m.graph, &m.schedule);
        let sym = &m.graph.split.symbol;
        let ns = sym.cblks.len();
        assert_eq!(ss.n_tasks(), 2 * ns);
        // Ownership matches the factorization schedule.
        for k in 0..ns {
            let p = m.schedule.task_proc[m.graph.head_task_of_cblk[k] as usize];
            assert_eq!(ss.task_proc[ss.fwd_task(k)], p);
            assert_eq!(ss.task_proc[ss.bwd_task(k)], p);
        }
        // Every task appears exactly once across the per-proc orders.
        let mut seen = vec![false; ss.n_tasks()];
        for tasks in &ss.proc_tasks {
            for &t in tasks {
                assert!(!seen[t as usize], "task {t} scheduled twice");
                seen[t as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Levels respect the fan-in DAG: a blok of k facing t orders
        // fwd(k) before fwd(t) and bwd(t) before bwd(k).
        for k in 0..ns {
            let cb = &sym.cblks[k];
            for b in cb.blok_start + 1..cb.blok_end {
                let t = sym.bloks[b].fcblk as usize;
                assert!(ss.level[ss.fwd_task(k)] < ss.level[ss.fwd_task(t)]);
                assert!(ss.level[ss.bwd_task(t)] < ss.level[ss.bwd_task(k)]);
                assert!(ss.end[ss.fwd_task(k)] <= ss.start[ss.fwd_task(t)] + 1e-9);
                assert!(ss.end[ss.bwd_task(t)] <= ss.start[ss.bwd_task(k)] + 1e-9);
            }
            assert!(ss.level[ss.fwd_task(k)] < ss.level[ss.bwd_task(k)]);
        }
        assert!(ss.makespan > 0.0);
        assert!(ss.n_levels >= 2);
    }

    #[test]
    fn solve_schedule_digest_is_stable() {
        let m = grid_mapping(10, 3);
        let a = solve_schedule(&m.graph, &m.schedule);
        let b = solve_schedule(&m.graph, &m.schedule);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.digest(), b.digest());
        // A different processor count must change the digest.
        let m2 = grid_mapping(10, 4);
        let c = solve_schedule(&m2.graph, &m2.schedule);
        assert_ne!(a.digest(), c.digest());
    }
}
