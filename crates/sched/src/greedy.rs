//! The greedy static scheduler — mapping by simulation of the parallel
//! factorization.
//!
//! Paper §2: *"it uses a greedy algorithm that consists in mapping each
//! task as it comes during the simulation of the parallel factorization.
//! For each processor, we define a timer that will hold the current elapsed
//! computation time, and a ready task heap [...] The next task to be mapped
//! is selected by taking the first task of each ready tasks heap, and by
//! choosing the one that comes from the lowest node in the elimination
//! tree. Then, we compute for each of its candidate processors the time at
//! which it will have completed the task [...] The task is mapped onto the
//! candidate processor that will be able to compute it the soonest."*
//!
//! The output is, per processor `p`, the fully ordered task vector `K_p`
//! that drives the numeric solver, plus the predicted timeline.

use crate::tasks::TaskGraph;
use pastix_machine::MachineModel;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The static schedule: owner, order and predicted timeline of every task.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Number of processors scheduled for.
    pub n_procs: usize,
    /// Owning processor per task.
    pub task_proc: Vec<u32>,
    /// Predicted start time (seconds).
    pub start: Vec<f64>,
    /// Predicted end time (seconds).
    pub end: Vec<f64>,
    /// `K_p`: per processor, task ids in execution (mapping) order.
    pub proc_tasks: Vec<Vec<u32>>,
    /// Predicted parallel factorization time.
    pub makespan: f64,
}

impl Schedule {
    /// Canonical byte serialization of the schedule's *discrete* decisions:
    /// processor count, task→processor ownership, and each processor's
    /// execution order `K_p`. Predicted times are derived floating-point
    /// data and deliberately excluded. Two scheduler runs produced the same
    /// schedule iff their canonical bytes are equal — this is the replay
    /// hook the determinism suite and the chaos harness compare on.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 4 * self.task_proc.len() * 2);
        out.extend_from_slice(&(self.n_procs as u64).to_le_bytes());
        out.extend_from_slice(&(self.task_proc.len() as u64).to_le_bytes());
        for &p in &self.task_proc {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for tasks in &self.proc_tasks {
            out.extend_from_slice(&(tasks.len() as u64).to_le_bytes());
            for &t in tasks {
                out.extend_from_slice(&t.to_le_bytes());
            }
        }
        out
    }

    /// FNV-1a digest of [`canonical_bytes`](Self::canonical_bytes) — a
    /// cheap fingerprint to print next to a chaos seed so a replayed run
    /// can assert it is executing the very same schedule.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.canonical_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Busy seconds per processor.
    pub fn busy_time(&self, g: &TaskGraph) -> Vec<f64> {
        let mut busy = vec![0.0; self.n_procs];
        for t in 0..g.n_tasks() {
            busy[self.task_proc[t] as usize] += g.cost[t];
        }
        busy
    }

    /// Average processor utilization over the makespan.
    pub fn utilization(&self, g: &TaskGraph) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        let total: f64 = self.busy_time(g).iter().sum();
        total / (self.makespan * self.n_procs as f64)
    }

    /// Writes the predicted timeline as CSV
    /// (`task,proc,kind,cblk,start,end,cost`), one row per task in global
    /// mapping order — loadable by any Gantt/trace viewer. The leading
    /// comment line carries the schedule [`digest`](Self::digest) so a
    /// trace can be matched to the chaos suite's replayable
    /// `(seed, policy, digest)` triple.
    pub fn write_timeline_csv<W: std::io::Write>(
        &self,
        g: &TaskGraph,
        mut w: W,
    ) -> std::io::Result<()> {
        use crate::tasks::TaskKind;
        writeln!(
            w,
            "# schedule_digest={:#018x} n_procs={}",
            self.digest(),
            self.n_procs
        )?;
        writeln!(w, "task,proc,kind,cblk,start,end,cost")?;
        for t in 0..g.n_tasks() {
            let kind = match g.kinds[t] {
                TaskKind::Comp1d { .. } => "COMP1D",
                TaskKind::Factor { .. } => "FACTOR",
                TaskKind::Bdiv { .. } => "BDIV",
                TaskKind::Bmod { .. } => "BMOD",
            };
            writeln!(
                w,
                "{t},{},{kind},{},{:.9},{:.9},{:.9}",
                self.task_proc[t],
                g.kinds[t].cblk(),
                self.start[t],
                self.end[t],
                g.cost[t]
            )?;
        }
        Ok(())
    }
}

/// Minimum modeled work (candidate span × dependency count) in one
/// candidate-evaluation round before [`greedy_schedule_par`] fans the
/// round out across threads — below it, thread overhead dominates the
/// arithmetic being split.
const PAR_CAND_MIN_WORK: usize = 16_384;

/// Runs the greedy list-scheduling simulation.
pub fn greedy_schedule(g: &TaskGraph, machine: &MachineModel) -> Schedule {
    greedy_schedule_with(g, machine, 1, PAR_CAND_MIN_WORK)
}

/// [`greedy_schedule`] with the candidate-cost evaluation fanned out over
/// `threads` when a round is heavy enough. Per-candidate completion times
/// are computed independently and reduced by a strict `(completion, q)`
/// lexicographic minimum — the exact tie-break of the sequential loop —
/// so the schedule is bitwise-identical at any thread count.
pub fn greedy_schedule_par(g: &TaskGraph, machine: &MachineModel, threads: usize) -> Schedule {
    greedy_schedule_with(g, machine, threads, PAR_CAND_MIN_WORK)
}

fn greedy_schedule_with(
    g: &TaskGraph,
    machine: &MachineModel,
    threads: usize,
    par_min_work: usize,
) -> Schedule {
    let n_tasks = g.n_tasks();
    let n_procs = machine.n_procs;
    let mut deps_remaining: Vec<u32> = (0..n_tasks)
        .map(|t| g.in_ptr[t + 1] - g.in_ptr[t])
        .collect();
    let mut task_proc = vec![u32::MAX; n_tasks];
    let mut start = vec![0.0f64; n_tasks];
    let mut end = vec![0.0f64; n_tasks];
    let mut timer = vec![0.0f64; n_procs];
    let mut proc_tasks: Vec<Vec<u32>> = vec![Vec::new(); n_procs];
    let mut mapped = vec![false; n_tasks];

    // Max-heaps keyed by (priority, Reverse(task id)): deepest supernode
    // first, then earliest-created task.
    let mut heaps: Vec<BinaryHeap<(u32, Reverse<u32>)>> = vec![BinaryHeap::new(); n_procs];
    let push_ready = |heaps: &mut Vec<BinaryHeap<(u32, Reverse<u32>)>>, g: &TaskGraph, t: usize| {
        let (f, l) = g.cand[t];
        for q in f..=l {
            heaps[q as usize].push((g.priority[t], Reverse(t as u32)));
        }
    };
    for t in 0..n_tasks {
        if deps_remaining[t] == 0 {
            push_ready(&mut heaps, g, t);
        }
    }

    let mut n_mapped = 0usize;
    while n_mapped < n_tasks {
        // Peek the first live task of each heap; choose the deepest.
        let mut best: Option<(u32, Reverse<u32>)> = None;
        for heap in heaps.iter_mut() {
            while let Some(&(pr, Reverse(t))) = heap.peek() {
                if mapped[t as usize] {
                    heap.pop();
                    continue;
                }
                if best.is_none() || (pr, Reverse(t)) > best.unwrap() {
                    best = Some((pr, Reverse(t)));
                }
                break;
            }
        }
        let (_, Reverse(t)) = best.expect("ready heaps empty but tasks remain (cycle?)");
        let t = t as usize;

        // Evaluate completion time on every candidate processor. Each
        // candidate's evaluation reads only frozen per-round state
        // (task_proc/end/timer), so heavy rounds fan out across threads;
        // the reduction scans candidates in `q` order with the same
        // strict `<` as the sequential loop, keeping the pick bitwise
        // identical.
        let (cf, cl) = g.cand[t];
        let span = (cl - cf + 1) as usize;
        let indeg = (g.in_ptr[t + 1] - g.in_ptr[t]).max(1) as usize;
        let eval_q = |q: u32| {
            // Time at which all contributions have arrived on q.
            let mut ready = 0.0f64;
            for (src, scalars) in g.in_edges(t) {
                let sp = task_proc[src as usize] as usize;
                let arrive = end[src as usize] + machine.comm_time(sp, q as usize, scalars as usize);
                ready = ready.max(arrive);
            }
            let s = timer[q as usize].max(ready);
            (s, s + g.cost[t])
        };
        let mut best_q = cf;
        let mut best_completion = f64::INFINITY;
        let mut best_start = 0.0;
        if threads > 1 && span > 1 && span * indeg >= par_min_work {
            let evals =
                pastix_graph::par::par_map_indexed(threads, span, |i| eval_q(cf + i as u32));
            for (i, &(s, completion)) in evals.iter().enumerate() {
                if completion < best_completion {
                    best_completion = completion;
                    best_q = cf + i as u32;
                    best_start = s;
                }
            }
        } else {
            for q in cf..=cl {
                let (s, completion) = eval_q(q);
                if completion < best_completion {
                    best_completion = completion;
                    best_q = q;
                    best_start = s;
                }
            }
        }
        task_proc[t] = best_q;
        start[t] = best_start;
        end[t] = best_completion;
        timer[best_q as usize] = best_completion;
        proc_tasks[best_q as usize].push(t as u32);
        mapped[t] = true;
        n_mapped += 1;

        for &dst in g.out_edges(t) {
            let dst = dst as usize;
            deps_remaining[dst] -= 1;
            if deps_remaining[dst] == 0 {
                push_ready(&mut heaps, g, dst);
            }
        }
    }

    let makespan = end.iter().copied().fold(0.0, f64::max);
    Schedule {
        n_procs,
        task_proc,
        start,
        end,
        proc_tasks,
        makespan,
    }
}

/// Communication statistics of a schedule, with and without the fan-in
/// aggregation of update blocks (ablation A3 of DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommStats {
    /// Cross-processor messages if every contribution were sent directly.
    pub messages_direct: u64,
    /// Scalars moved in the direct scheme.
    pub scalars_direct: u64,
    /// Cross-processor messages with fan-in aggregation (one AUB per
    /// sending processor and target block).
    pub messages_fanin: u64,
    /// Scalars moved with aggregation (each AUB ships its target region).
    pub scalars_fanin: u64,
}

/// Computes [`CommStats`] for a schedule by replaying the edge list.
pub fn comm_stats(g: &TaskGraph, s: &Schedule) -> CommStats {
    use std::collections::HashSet;
    let mut messages_direct = 0u64;
    let mut scalars_direct = 0u64;
    let mut groups: HashSet<(u32, u32)> = HashSet::new();
    let mut scalars_fanin = 0u64;
    for t in 0..g.n_tasks() {
        let tq = s.task_proc[t];
        for (src, scalars) in g.in_edges(t) {
            let sq = s.task_proc[src as usize];
            if sq != tq {
                messages_direct += 1;
                scalars_direct += scalars as u64;
                if groups.insert((sq, t as u32)) {
                    scalars_fanin += g.region_scalars[t];
                }
            }
        }
    }
    CommStats {
        messages_direct,
        scalars_direct,
        messages_fanin: groups.len() as u64,
        scalars_fanin,
    }
}

/// Summary analysis of a schedule against its task graph's intrinsic
/// limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleAnalysis {
    /// Total work (sum of task costs) in model seconds.
    pub total_work: f64,
    /// Critical path (longest dependency chain, communication-free): the
    /// absolute lower bound on the makespan for *any* processor count.
    pub critical_path: f64,
    /// Achieved makespan.
    pub makespan: f64,
    /// `max(critical_path, total_work / P)` — the classical lower bound
    /// for this processor count.
    pub lower_bound: f64,
    /// `lower_bound / makespan` ∈ (0, 1]; 1 means provably optimal.
    pub quality: f64,
}

/// Computes the dependency-chain critical path of the task graph (edges
/// point forward, so one pass suffices).
pub fn critical_path(g: &TaskGraph) -> f64 {
    critical_path_chain(g).0
}

/// Critical path of the task graph together with one realizing task chain
/// (dependency order, source first). The chain is what the trace report
/// walks to break a run's makespan down against the model's prediction.
pub fn critical_path_chain(g: &TaskGraph) -> (f64, Vec<u32>) {
    let n = g.n_tasks();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let mut cp = vec![0.0f64; n];
    let mut pred = vec![u32::MAX; n];
    let mut best = 0.0f64;
    let mut best_t = 0usize;
    for t in 0..n {
        let mut ready = 0.0f64;
        for (src, _) in g.in_edges(t) {
            if cp[src as usize] > ready {
                ready = cp[src as usize];
                pred[t] = src;
            }
        }
        cp[t] = ready + g.cost[t];
        if cp[t] > best {
            best = cp[t];
            best_t = t;
        }
    }
    let mut chain = Vec::new();
    let mut t = best_t as u32;
    loop {
        chain.push(t);
        let p = pred[t as usize];
        if p == u32::MAX {
            break;
        }
        t = p;
    }
    chain.reverse();
    (best, chain)
}

/// One row of [`Schedule::predicted_tasks`]: the static model's prediction
/// for a task, in the cost model's time unit (seconds of the calibrated
/// BLAS/network model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedTask {
    /// Task id.
    pub task: u32,
    /// Owning processor.
    pub proc: u32,
    /// Modeled execution cost.
    pub cost: f64,
    /// Predicted start time.
    pub start: f64,
    /// Predicted end time.
    pub end: f64,
}

impl Schedule {
    /// The per-task predictions of this schedule, joined with the task
    /// graph's modeled costs — the "expected" side of the trace report's
    /// predicted-vs-measured comparison.
    pub fn predicted_tasks(&self, g: &TaskGraph) -> Vec<PredictedTask> {
        (0..g.n_tasks())
            .map(|t| PredictedTask {
                task: t as u32,
                proc: self.task_proc[t],
                cost: g.cost[t],
                start: self.start[t],
                end: self.end[t],
            })
            .collect()
    }
}

/// Produces the [`ScheduleAnalysis`] of a schedule.
pub fn analyze_schedule(g: &TaskGraph, s: &Schedule) -> ScheduleAnalysis {
    let total_work = g.total_cost();
    let critical_path = critical_path(g);
    let lower_bound = critical_path.max(total_work / s.n_procs as f64);
    ScheduleAnalysis {
        total_work,
        critical_path,
        makespan: s.makespan,
        lower_bound,
        quality: if s.makespan > 0.0 {
            (lower_bound / s.makespan).min(1.0)
        } else {
            1.0
        },
    }
}

/// A classical static mapping baseline: block-cyclic assignment of tasks
/// over their candidate sets (no cost model, no simulation — the kind of
/// run-time-regulated distribution the paper's scheduling-by-simulation
/// replaces). Execution order and the predicted timeline are then derived
/// by replaying the dependencies, so the resulting [`Schedule`] is valid
/// and drives the solver exactly like the greedy one; only the *mapping
/// policy* differs. Used by the mapping ablation.
pub fn cyclic_schedule(g: &TaskGraph, machine: &MachineModel) -> Schedule {
    use crate::tasks::TaskKind;
    let n_tasks = g.n_tasks();
    let n_procs = machine.n_procs;
    let mut task_proc = vec![0u32; n_tasks];
    for t in 0..n_tasks {
        let (cf, cl) = g.cand[t];
        let span = (cl - cf + 1) as usize;
        // Cyclic coordinate: column blocks cycle 1D tasks; 2D tasks cycle
        // by their block coordinates (row-major over the pair).
        let coord = match g.kinds[t] {
            TaskKind::Comp1d { cblk } | TaskKind::Factor { cblk } => cblk as usize,
            TaskKind::Bdiv { blok, .. } => blok as usize,
            TaskKind::Bmod { blok_row, blok_col, .. } => {
                blok_row as usize * 31 + blok_col as usize
            }
        };
        task_proc[t] = cf + (coord % span) as u32;
    }
    // Replay: tasks in id order are topologically sorted (edges point
    // forward), so a single pass computes the timeline.
    let mut start = vec![0.0f64; n_tasks];
    let mut end = vec![0.0f64; n_tasks];
    let mut timer = vec![0.0f64; n_procs];
    let mut proc_tasks: Vec<Vec<u32>> = vec![Vec::new(); n_procs];
    for t in 0..n_tasks {
        let q = task_proc[t] as usize;
        let mut ready = 0.0f64;
        for (src, scalars) in g.in_edges(t) {
            let sp = task_proc[src as usize] as usize;
            ready = ready.max(end[src as usize] + machine.comm_time(sp, q, scalars as usize));
        }
        start[t] = timer[q].max(ready);
        end[t] = start[t] + g.cost[t];
        timer[q] = end[t];
        proc_tasks[q].push(t as u32);
    }
    let makespan = end.iter().copied().fold(0.0, f64::max);
    Schedule {
        n_procs,
        task_proc,
        start,
        end,
        proc_tasks,
        makespan,
    }
}

/// Memory accounting of a schedule: the factor scalars each processor owns
/// and an upper bound on its fan-in aggregation buffers (the paper notes
/// that when *"memory is a critical issue, an aggregated update block can
/// be sent with partial aggregation to free memory space"* — the Fan-Both
/// fallback; this accounting is what such a policy would watch).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStats {
    /// Owned factor scalars per processor (BDIV regions counted twice:
    /// `[L | F]`).
    pub factor_scalars: Vec<u64>,
    /// Upper bound of simultaneously live outgoing AUB scalars per
    /// processor (every remote target's region once).
    pub aub_scalars_bound: Vec<u64>,
}

impl MemoryStats {
    /// Largest per-processor total (factor + AUB bound).
    pub fn max_total(&self) -> u64 {
        self.factor_scalars
            .iter()
            .zip(&self.aub_scalars_bound)
            .map(|(&f, &a)| f + a)
            .max()
            .unwrap_or(0)
    }
}

/// Computes [`MemoryStats`] for a schedule.
pub fn memory_stats(g: &TaskGraph, s: &Schedule) -> MemoryStats {
    use crate::tasks::TaskKind;
    use std::collections::HashSet;
    let mut factor = vec![0u64; s.n_procs];
    for t in 0..g.n_tasks() {
        let p = s.task_proc[t] as usize;
        let mult = if matches!(g.kinds[t], TaskKind::Bdiv { .. }) {
            2
        } else {
            1
        };
        factor[p] += g.region_scalars[t] * mult;
    }
    let mut groups: HashSet<(u32, u32)> = HashSet::new();
    let mut aub = vec![0u64; s.n_procs];
    for t in 0..g.n_tasks() {
        let tq = s.task_proc[t];
        for (src, _) in g.in_edges(t) {
            let sq = s.task_proc[src as usize];
            if sq != tq && groups.insert((sq, t as u32)) {
                aub[sq as usize] += g.region_scalars[t];
            }
        }
    }
    MemoryStats {
        factor_scalars: factor,
        aub_scalars_bound: aub,
    }
}

/// Validates that a schedule respects dependencies and per-processor
/// sequential execution (test helper).
pub fn validate_schedule(g: &TaskGraph, s: &Schedule, machine: &MachineModel) -> Result<(), String> {
    let eps = 1e-9;
    for t in 0..g.n_tasks() {
        if (s.end[t] - s.start[t] - g.cost[t]).abs() > eps + 1e-12 * s.end[t].abs() {
            return Err(format!("task {t}: duration mismatch"));
        }
        let q = s.task_proc[t] as usize;
        let (cf, cl) = g.cand[t];
        if !(cf as usize <= q && q <= cl as usize) {
            return Err(format!("task {t} mapped off its candidate set"));
        }
        for (src, scalars) in g.in_edges(t) {
            let sp = s.task_proc[src as usize] as usize;
            let arrive = s.end[src as usize] + machine.comm_time(sp, q, scalars as usize);
            if s.start[t] + eps < arrive {
                return Err(format!("task {t} starts before dep {src} arrives"));
            }
        }
    }
    for p in 0..s.n_procs {
        let mut prev_end = 0.0f64;
        for &t in &s.proc_tasks[p] {
            let t = t as usize;
            if s.start[t] + eps < prev_end {
                return Err(format!("proc {p}: overlapping tasks"));
            }
            prev_end = s.end[t];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::candidates::{proportional_mapping, DistStrategy, MappingOptions};
    use crate::tasks::build_task_graph;
    use pastix_graph::{CsrGraph, Permutation};
    use pastix_symbolic::{analyze, split_symbol, AnalysisOptions};

    fn task_graph(nx: usize, procs: usize, strategy: DistStrategy) -> (TaskGraph, MachineModel) {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..nx {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < nx {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let g = CsrGraph::from_edges(nx * nx, &e);
        let a = analyze(&g, &Permutation::identity(nx * nx), &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let mopts = MappingOptions {
            procs_2d_min: 2.0,
            width_2d_min: 8,
            strategy,
        };
        let cand = proportional_mapping(&a.symbol, &machine, &mopts);
        let split = split_symbol(&a.symbol, 8);
        (build_task_graph(split, &cand, &machine), machine)
    }

    #[test]
    fn schedule_is_valid_mixed() {
        let (tg, machine) = task_graph(16, 4, DistStrategy::Mixed1d2d);
        let s = greedy_schedule(&tg, &machine);
        validate_schedule(&tg, &s, &machine).unwrap();
        assert!(s.makespan > 0.0);
    }

    #[test]
    fn schedule_is_valid_1d() {
        let (tg, machine) = task_graph(16, 4, DistStrategy::Only1d);
        let s = greedy_schedule(&tg, &machine);
        validate_schedule(&tg, &s, &machine).unwrap();
    }

    #[test]
    fn single_proc_schedule_is_sequential_sum() {
        let (tg, machine) = task_graph(12, 1, DistStrategy::Only1d);
        let s = greedy_schedule(&tg, &machine);
        validate_schedule(&tg, &s, &machine).unwrap();
        assert!((s.makespan - tg.total_cost()).abs() < 1e-9);
        assert!((s.utilization(&tg) - 1.0).abs() < 1e-9);
    }

    /// A task graph with real tree parallelism: the identity-ordered
    /// grid the other tests use has a chain etree (no independent
    /// subtrees at all), so distributing it can only add comm cost —
    /// the speedup claim needs a nested-dissection ordering.
    fn nd_task_graph(nx: usize, procs: usize) -> (TaskGraph, MachineModel) {
        let a = pastix_testsupport::graph_analysis(&pastix_testsupport::grid_graph(nx, nx), 16);
        let machine = MachineModel::sp2(procs);
        let mopts = MappingOptions {
            procs_2d_min: 2.0,
            width_2d_min: 8,
            strategy: DistStrategy::Mixed1d2d,
        };
        let cand = proportional_mapping(&a.symbol, &machine, &mopts);
        let split = split_symbol(&a.symbol, 8);
        (build_task_graph(split, &cand, &machine), machine)
    }

    #[test]
    fn more_procs_never_much_slower(){
        let (tg1, m1) = nd_task_graph(20, 1);
        let s1 = greedy_schedule(&tg1, &m1);
        let (tg4, m4) = nd_task_graph(20, 4);
        let s4 = greedy_schedule(&tg4, &m4);
        // Greedy + comm costs: not guaranteed monotone, but 4 procs should
        // beat 1 proc clearly on this problem.
        assert!(
            s4.makespan < s1.makespan,
            "4-proc {} vs 1-proc {}",
            s4.makespan,
            s1.makespan
        );
    }

    #[test]
    fn all_tasks_mapped_exactly_once() {
        let (tg, machine) = task_graph(14, 3, DistStrategy::Mixed1d2d);
        let s = greedy_schedule(&tg, &machine);
        let total: usize = s.proc_tasks.iter().map(|v| v.len()).sum();
        assert_eq!(total, tg.n_tasks());
        let mut seen = vec![false; tg.n_tasks()];
        for p in &s.proc_tasks {
            for &t in p {
                assert!(!seen[t as usize]);
                seen[t as usize] = true;
            }
        }
    }

    #[test]
    fn comm_stats_fanin_never_more_messages() {
        let (tg, machine) = task_graph(16, 4, DistStrategy::Mixed1d2d);
        let s = greedy_schedule(&tg, &machine);
        let c = comm_stats(&tg, &s);
        assert!(c.messages_fanin <= c.messages_direct);
    }

    #[test]
    fn critical_path_bounds_every_schedule() {
        let (tg, machine) = task_graph(16, 4, DistStrategy::Mixed1d2d);
        let s = greedy_schedule(&tg, &machine);
        let a = analyze_schedule(&tg, &s);
        assert!(a.critical_path > 0.0);
        assert!(a.critical_path <= a.total_work + 1e-12);
        // No schedule (with non-negative comm) can beat the lower bound.
        assert!(s.makespan + 1e-12 >= a.lower_bound, "makespan {} < bound {}", s.makespan, a.lower_bound);
        assert!(a.quality > 0.0 && a.quality <= 1.0);
    }

    #[test]
    fn cyclic_schedule_is_valid_but_not_better() {
        let (tg, machine) = task_graph(16, 4, DistStrategy::Mixed1d2d);
        let greedy = greedy_schedule(&tg, &machine);
        let cyc = cyclic_schedule(&tg, &machine);
        validate_schedule(&tg, &cyc, &machine).unwrap();
        // The simulation-driven mapping should never lose to round-robin
        // on this problem family.
        assert!(greedy.makespan <= cyc.makespan * 1.05,
            "greedy {} vs cyclic {}", greedy.makespan, cyc.makespan);
    }

    #[test]
    fn timeline_csv_has_all_tasks() {
        let (tg, machine) = task_graph(12, 2, DistStrategy::Only1d);
        let s = greedy_schedule(&tg, &machine);
        let mut buf = Vec::new();
        s.write_timeline_csv(&tg, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // digest comment + header + rows
        assert_eq!(text.lines().count(), tg.n_tasks() + 2);
        let expect = format!("# schedule_digest={:#018x} n_procs={}", s.digest(), s.n_procs);
        assert!(text.starts_with(&expect), "missing digest line: {text:.80}");
        assert!(text.lines().nth(1).unwrap().starts_with("task,proc,kind,cblk,start,end,cost"));
    }

    #[test]
    fn memory_stats_sum_to_owned_regions() {
        let (tg, machine) = task_graph(14, 4, DistStrategy::Mixed1d2d);
        let s = greedy_schedule(&tg, &machine);
        let m = memory_stats(&tg, &s);
        let total: u64 = m.factor_scalars.iter().sum();
        assert!(total > 0);
        assert!(m.max_total() >= *m.factor_scalars.iter().max().unwrap());
    }

    #[test]
    fn deterministic() {
        let (tg, machine) = task_graph(12, 4, DistStrategy::Mixed1d2d);
        let s1 = greedy_schedule(&tg, &machine);
        let s2 = greedy_schedule(&tg, &machine);
        assert_eq!(s1.task_proc, s2.task_proc);
        assert_eq!(s1.proc_tasks, s2.proc_tasks);
    }

    #[test]
    fn parallel_candidate_eval_is_bitwise_identical() {
        // Force the parallel evaluation path on every round (min work 0)
        // and check the schedule digests agree with the sequential pick.
        let (tg, machine) = nd_task_graph(20, 8);
        let seq = greedy_schedule(&tg, &machine);
        for t in [2usize, 4, 7] {
            let par = greedy_schedule_with(&tg, &machine, t, 0);
            assert_eq!(seq.digest(), par.digest(), "threads={t}");
            assert_eq!(seq.task_proc, par.task_proc, "threads={t}");
            assert_eq!(seq.proc_tasks, par.proc_tasks, "threads={t}");
        }
    }
}
