//! # pastix-sched
//!
//! The core contribution of the PaStiX paper: block repartitioning and
//! static scheduling for mixed 1D/2D block distributions.
//!
//! The phase runs in two steps, exactly as §2 of the paper describes:
//!
//! 1. **Partitioning** ([`candidates`]): recursive top-down proportional
//!    mapping over the block elimination tree assigns every supernode a set
//!    of candidate processors (with fractional boundaries, so a processor
//!    can serve two sibling subtrees) and picks a 1D or 2D distribution;
//!    large supernodes are split by the BLAS blocking size
//!    (`pastix_symbolic::split_symbol`).
//! 2. **Scheduling** ([`greedy`]): the task graph (COMP1D / FACTOR / BDIV /
//!    BMOD) is mapped by a greedy simulation of the parallel factorization
//!    driven by the calibrated BLAS + network time model, producing the
//!    fully ordered per-processor task vectors `K_p` that drive the solver,
//!    along with the predicted timeline (the discrete-event "Table 2"
//!    numbers).

#![warn(missing_docs)]

pub mod candidates;
pub mod cost;
pub mod greedy;
pub mod solve;
pub mod tasks;

pub use candidates::{proportional_mapping, CandidateInfo, DistStrategy, MappingOptions};
pub use cost::{bdiv_cost, bmod_cost, comp1d_cost, factor_cost, sequential_cost};
pub use greedy::{analyze_schedule, comm_stats, critical_path, critical_path_chain, cyclic_schedule, greedy_schedule, greedy_schedule_par, memory_stats, validate_schedule, CommStats, MemoryStats, PredictedTask, Schedule, ScheduleAnalysis};
pub use solve::{solve_schedule, SolveSchedule};
pub use tasks::{build_task_graph, find_covering_blok, TaskGraph, TaskKind};

use pastix_graph::Parallelism;
use pastix_machine::MachineModel;
use pastix_symbolic::{split_symbol, SymbolMatrix};

/// Options of the whole partitioning + scheduling phase.
#[derive(Debug, Clone)]
pub struct SchedOptions {
    /// BLAS blocking size used to split wide supernodes (the paper uses 64).
    pub block_size: usize,
    /// Proportional-mapping knobs (1D/2D switch).
    pub mapping: MappingOptions,
    /// Parallelism of the mapping/scheduling phase (stage overlap plus
    /// candidate-cost fan-out). Never changes the schedule — only
    /// wall-clock time.
    pub parallelism: Parallelism,
}

impl Default for SchedOptions {
    fn default() -> Self {
        Self {
            block_size: 64,
            mapping: MappingOptions::default(),
            parallelism: Parallelism::Auto,
        }
    }
}

/// Output of [`map_and_schedule`].
#[derive(Debug, Clone)]
pub struct Mapping {
    /// The task graph over the split symbol (owns the split symbol).
    pub graph: TaskGraph,
    /// The static schedule.
    pub schedule: Schedule,
    /// Candidate info of the original supernodes (for diagnostics).
    pub candidates: CandidateInfo,
}

/// Runs the complete block repartitioning and scheduling phase on a symbol
/// matrix for a given machine.
///
/// ```
/// use pastix_graph::{CsrGraph, Permutation};
/// use pastix_machine::MachineModel;
/// use pastix_sched::{map_and_schedule, SchedOptions};
/// use pastix_symbolic::{analyze, AnalysisOptions};
/// let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
/// let a = analyze(&g, &Permutation::identity(4), &AnalysisOptions::default());
/// let m = map_and_schedule(&a.symbol, &MachineModel::sp2(2), &SchedOptions::default());
/// assert!(m.schedule.makespan > 0.0);
/// assert_eq!(m.schedule.task_proc.len(), m.graph.n_tasks());
/// ```
pub fn map_and_schedule(sym: &SymbolMatrix, machine: &MachineModel, opts: &SchedOptions) -> Mapping {
    let threads = opts.parallelism.effective_threads();
    // Proportional mapping and supernode splitting both read only the
    // symbol — overlap them when threads are available.
    let run_mapping = || proportional_mapping(sym, machine, &opts.mapping);
    let run_split = || split_symbol(sym, opts.block_size);
    let (candidates, split) = if threads > 1 {
        rayon::join(run_mapping, run_split)
    } else {
        (run_mapping(), run_split())
    };
    let graph = build_task_graph(split, &candidates, machine);
    let schedule = greedy_schedule_par(&graph, machine, threads);
    Mapping {
        graph,
        schedule,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::{CsrGraph, Permutation};
    use pastix_symbolic::{analyze, AnalysisOptions};

    #[test]
    fn end_to_end_mapping() {
        let mut e = Vec::new();
        let nx = 14;
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..nx {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < nx {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        let g = CsrGraph::from_edges(nx * nx, &e);
        let a = analyze(&g, &Permutation::identity(nx * nx), &AnalysisOptions::default());
        let machine = MachineModel::sp2(4);
        let opts = SchedOptions {
            block_size: 8,
            mapping: MappingOptions {
                procs_2d_min: 2.0,
                width_2d_min: 8,
                ..Default::default()
            },
            ..Default::default()
        };
        let m = map_and_schedule(&a.symbol, &machine, &opts);
        greedy::validate_schedule(&m.graph, &m.schedule, &machine).unwrap();
        assert!(m.schedule.makespan > 0.0);
        assert!(m.schedule.utilization(&m.graph) > 0.0);
    }
}
