//! Property tests pinning the greedy static scheduler as a *pure
//! function* of its inputs: the paper's whole execution model rests on
//! every processor precomputing the same schedule, and the chaos suite's
//! seed-replay guarantee additionally needs the schedule to be identical
//! between the failing run and the replay. Comparison goes through
//! `Schedule::canonical_bytes` / `digest`, the same hooks the harness
//! prints next to a failing seed.

use pastix_graph::{CsrGraph, Permutation};
use pastix_machine::MachineModel;
use pastix_sched::{
    map_and_schedule, validate_schedule, DistStrategy, MappingOptions, SchedOptions,
};
use pastix_symbolic::{analyze, AnalysisOptions};
use proptest::prelude::*;

fn grid_graph(nx: usize, ny: usize) -> CsrGraph {
    let mut e = Vec::new();
    let id = |x: usize, y: usize| (x + nx * y) as u32;
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                e.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < ny {
                e.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    CsrGraph::from_edges(nx * ny, &e)
}

fn schedule_opts(block: usize, strategy: DistStrategy) -> SchedOptions {
    let mut opts = SchedOptions::default();
    opts.block_size = block;
    opts.mapping = MappingOptions {
        procs_2d_min: 2.0,
        width_2d_min: block,
        strategy,
    };
    opts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Rebuilding the entire pipeline (analysis → mapping → simulation)
    /// from the same inputs must reproduce the schedule byte for byte, for
    /// every processor count — no hidden iteration-order or tie-break
    /// nondeterminism anywhere in the chain.
    #[test]
    fn schedule_is_a_pure_function_of_inputs(
        nx in 6usize..16,
        ny in 6usize..16,
        procs in 1usize..=8,
        block in 4usize..=8,
        strat in 0u8..2,
    ) {
        let strategy = if strat == 0 { DistStrategy::Only1d } else { DistStrategy::Mixed1d2d };
        let build = || {
            let g = grid_graph(nx, ny);
            let an = analyze(&g, &Permutation::identity(nx * ny), &AnalysisOptions::default());
            let machine = MachineModel::sp2(procs);
            map_and_schedule(&an.symbol, &machine, &schedule_opts(block, strategy))
        };
        let m1 = build();
        let m2 = build();
        prop_assert_eq!(
            m1.schedule.canonical_bytes(),
            m2.schedule.canonical_bytes(),
            "schedule differs across identical runs (digest {:#x} vs {:#x})",
            m1.schedule.digest(),
            m2.schedule.digest()
        );
        prop_assert_eq!(m1.schedule.digest(), m2.schedule.digest());
    }

    /// The canonical serialization is faithful: it changes whenever the
    /// discrete schedule changes (different processor counts on a problem
    /// large enough that the mapping cannot degenerate to one owner), and
    /// a validated schedule round-trips its own digest stably.
    #[test]
    fn digest_tracks_the_discrete_schedule(
        procs in 2usize..=6,
        block in 4usize..=8,
    ) {
        let g = grid_graph(14, 14);
        let an = analyze(&g, &Permutation::identity(14 * 14), &AnalysisOptions::default());
        let machine = MachineModel::sp2(procs);
        let opts = schedule_opts(block, DistStrategy::Mixed1d2d);
        let mapping = map_and_schedule(&an.symbol, &machine, &opts);
        validate_schedule(&mapping.graph, &mapping.schedule, &machine).unwrap();
        // Stable across repeated digest calls.
        prop_assert_eq!(mapping.schedule.digest(), mapping.schedule.digest());
        // A single-processor schedule of the same problem is discretely
        // different, and the canonical form must say so.
        let m1 = map_and_schedule(&an.symbol, &MachineModel::sp2(1), &opts);
        prop_assert_ne!(m1.schedule.canonical_bytes(), mapping.schedule.canonical_bytes());
    }
}

/// Plain (non-property) pin: the digest of a fixed tiny problem is stable
/// across test processes too — if an intentional scheduler change shifts
/// it, this test documents that the schedule format/decisions moved.
#[test]
fn canonical_bytes_shape() {
    let g = grid_graph(8, 8);
    let an = analyze(&g, &Permutation::identity(64), &AnalysisOptions::default());
    let machine = MachineModel::sp2(3);
    let m = map_and_schedule(&an.symbol, &machine, &schedule_opts(4, DistStrategy::Mixed1d2d));
    let bytes = m.schedule.canonical_bytes();
    let n_tasks = m.graph.n_tasks();
    // Header (2×u64) + task_proc (4 bytes each) + per-proc lists
    // (u64 length + 4 bytes per task, tasks appearing exactly once).
    let expect = 16 + 4 * n_tasks + 8 * m.schedule.n_procs + 4 * n_tasks;
    assert_eq!(bytes.len(), expect);
    assert_eq!(u64::from_le_bytes(bytes[0..8].try_into().unwrap()), 3);
    assert_eq!(
        u64::from_le_bytes(bytes[8..16].try_into().unwrap()),
        n_tasks as u64
    );
}
