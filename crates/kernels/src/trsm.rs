//! Triangular solve kernels.
//!
//! Panel solves (right-side, transposed lower triangle) implement the
//! supernodal step `L_off ← A_off · L⁻ᵀ · D⁻¹` (paper, Fig. 1 line 5/13:
//! "Solve L_kk Fᵀ = Aᵀ and D_k Lᵀ = Fᵀ"), and the vector solves implement
//! the forward/backward substitution of the solve phase.
//!
//! Everything is column-major with explicit leading dimensions. Triangular
//! factors are read from the *lower* triangle only; the strictly upper part
//! of a factored block is never referenced.

use crate::gemm::{gemm_nn_acc, gemm_nt_acc, gemm_tn_acc};
use crate::scalar::Scalar;

/// Column-tile width of the blocked panel solves: cross-tile updates become
/// `m × NB_TRSM × j0` GEMMs routed through the packed kernels, while the
/// in-tile dependence chain runs the scalar column sweep.
const NB_TRSM: usize = 48;

/// Solves `X · Lᵀ = A` in place where `L` (order `n`, leading dimension
/// `ldd`, lower triangle of `diag`) is **unit** lower triangular, then
/// rescales each column `j` of the result by `1 / D(j)` with `D` on the
/// diagonal of `diag`.
///
/// `panel` is `m × n` (leading dimension `ldp`) and holds `A` on entry, the
/// final off-diagonal factor rows `L_off` on exit.
///
/// Blocked by column tiles: the contribution of all already-solved tiles to
/// tile `J` is `X_J ← X_J − X_{0..j0} · L(J, 0..j0)ᵀ`, a single
/// [`gemm_nt_acc`]; only the `NB_TRSM`-wide in-tile solve is scalar.
pub fn trsm_ldlt_panel<T: Scalar>(
    m: usize,
    n: usize,
    diag: &[T],
    ldd: usize,
    panel: &mut [T],
    ldp: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldd >= n, "diag leading dimension too small");
    assert!(ldp >= m, "panel leading dimension too small");
    assert!(diag.len() >= ldd * (n - 1) + n, "diag buffer too small");
    assert!(panel.len() >= ldp * (n - 1) + m, "panel buffer too small");
    // Pass 1: unit-lower solve X'·Lᵀ = A. Each column must stay unscaled
    // until every later column has consumed it.
    let mut j0 = 0;
    while j0 < n {
        let w = NB_TRSM.min(n - j0);
        if j0 > 0 {
            // X'_J -= X'_{0..j0} · L(J, 0..j0)ᵀ: the solved columns are in
            // `left`, tile J starts `right`; rows j0.. of `diag` hold L(J,·).
            let (left, right) = panel.split_at_mut(j0 * ldp);
            gemm_nt_acc(m, w, j0, -T::one(), left, ldp, &diag[j0..], ldd, right, ldp);
        }
        for j in j0..j0 + w {
            // X'(:,j) -= Σ_{j0≤i<j} X'(:,i) · L(j,i)   (unit diagonal)
            for i in j0..j {
                let l = diag[j + i * ldd];
                if l == T::zero() {
                    continue;
                }
                let (xi, xj) = {
                    let (left, right) = panel.split_at_mut(j * ldp);
                    (&left[i * ldp..i * ldp + m], &mut right[..m])
                };
                for (x, &v) in xj.iter_mut().zip(xi) {
                    *x -= v * l;
                }
            }
        }
        j0 += w;
    }
    // Pass 2: X = X' · D⁻¹.
    for j in 0..n {
        let dinv = diag[j + j * ldd].recip();
        for x in &mut panel[j * ldp..j * ldp + m] {
            *x *= dinv;
        }
    }
}

/// Solves `X · Lᵀ = A` in place where `L` is **non-unit** lower triangular
/// (Cholesky factor). Used by the `L·Lᵀ` baseline. Blocked the same way as
/// [`trsm_ldlt_panel`] (solved columns are already scaled, so the cross-tile
/// update is the same GEMM).
pub fn trsm_llt_panel<T: Scalar>(
    m: usize,
    n: usize,
    diag: &[T],
    ldd: usize,
    panel: &mut [T],
    ldp: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(ldd >= n, "diag leading dimension too small");
    assert!(ldp >= m, "panel leading dimension too small");
    let mut j0 = 0;
    while j0 < n {
        let w = NB_TRSM.min(n - j0);
        if j0 > 0 {
            let (left, right) = panel.split_at_mut(j0 * ldp);
            gemm_nt_acc(m, w, j0, -T::one(), left, ldp, &diag[j0..], ldd, right, ldp);
        }
        for j in j0..j0 + w {
            for i in j0..j {
                let l = diag[j + i * ldd];
                if l == T::zero() {
                    continue;
                }
                let (xi, xj) = {
                    let (left, right) = panel.split_at_mut(j * ldp);
                    (&left[i * ldp..i * ldp + m], &mut right[..m])
                };
                for (x, &v) in xj.iter_mut().zip(xi) {
                    *x -= v * l;
                }
            }
            let linv = diag[j + j * ldd].recip();
            for x in &mut panel[j * ldp..j * ldp + m] {
                *x *= linv;
            }
        }
        j0 += w;
    }
}

/// `dst(:,j) = src(:,j) · d[j]` for `j < n`; panels are `m × n`.
///
/// Used to form `F = L·D` (the scaled panel whose transpose multiplies in
/// every contribution computation).
pub fn scale_cols_by_diag_into<T: Scalar>(
    m: usize,
    n: usize,
    src: &[T],
    lds: usize,
    d: &[T],
    dst: &mut [T],
    ldd: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    assert!(lds >= m && ldd >= m, "leading dimensions too small");
    assert!(d.len() >= n, "diagonal too short");
    for j in 0..n {
        let s = d[j];
        let srcj = &src[j * lds..j * lds + m];
        let dstj = &mut dst[j * ldd..j * ldd + m];
        for (o, &v) in dstj.iter_mut().zip(srcj) {
            *o = v * s;
        }
    }
}

/// Forward substitution `L · X = B` in place, `L` unit lower triangular
/// (order `n`), `X`/`B` of shape `n × nrhs` with leading dimension `ldx`.
pub fn solve_unit_lower<T: Scalar>(
    n: usize,
    diag: &[T],
    ldd: usize,
    x: &mut [T],
    nrhs: usize,
    ldx: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    assert!(ldd >= n && ldx >= n);
    for r in 0..nrhs {
        let xr = &mut x[r * ldx..r * ldx + n];
        for j in 0..n {
            let v = xr[j];
            if v == T::zero() {
                continue;
            }
            for i in (j + 1)..n {
                let l = diag[i + j * ldd];
                xr[i] -= l * v;
            }
        }
    }
}

/// Backward substitution `Lᵀ · X = B` in place, `L` unit lower triangular.
pub fn solve_unit_lower_trans<T: Scalar>(
    n: usize,
    diag: &[T],
    ldd: usize,
    x: &mut [T],
    nrhs: usize,
    ldx: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    assert!(ldd >= n && ldx >= n);
    for r in 0..nrhs {
        let xr = &mut x[r * ldx..r * ldx + n];
        for j in (0..n).rev() {
            let mut v = xr[j];
            for i in (j + 1)..n {
                v -= diag[i + j * ldd] * xr[i];
            }
            xr[j] = v;
        }
    }
}

/// Blocked multi-RHS forward substitution `L · X = B` in place, `L` unit
/// lower triangular (order `n`), `X`/`B` of shape `n × nrhs` (ldx ≥ n).
///
/// The serving-path variant of [`solve_unit_lower`]: columns of `L` are
/// tiled by [`NB_TRSM`]; the in-tile dependence chain runs the scalar sweep
/// per right-hand side, while the cross-tile trailing update over all
/// `nrhs` columns at once is one `(n−j1) × nrhs × w` [`gemm_nn_acc`]
/// routed through the packed kernels. `nrhs == 1` delegates to the scalar
/// sweep unchanged (bitwise-identical to the single-RHS solve).
pub fn solve_unit_lower_panel<T: Scalar>(
    n: usize,
    diag: &[T],
    ldd: usize,
    x: &mut [T],
    nrhs: usize,
    ldx: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    if nrhs == 1 || n <= NB_TRSM {
        return solve_unit_lower(n, diag, ldd, x, nrhs, ldx);
    }
    assert!(ldd >= n && ldx >= n);
    let mut tile = vec![T::zero(); NB_TRSM * nrhs];
    let mut j0 = 0;
    while j0 < n {
        let w = NB_TRSM.min(n - j0);
        let j1 = j0 + w;
        // In-tile scalar sweep, bounded to rows of the tile.
        for r in 0..nrhs {
            let xr = &mut x[r * ldx..r * ldx + n];
            for j in j0..j1 {
                let v = xr[j];
                if v == T::zero() {
                    continue;
                }
                for i in (j + 1)..j1 {
                    xr[i] -= diag[i + j * ldd] * v;
                }
            }
        }
        // Trailing rows of every column at once:
        // X[j1.., :] −= L[j1.., j0..j1] · X[j0..j1, :].
        let m = n - j1;
        if m > 0 {
            for r in 0..nrhs {
                tile[r * w..r * w + w].copy_from_slice(&x[r * ldx + j0..r * ldx + j1]);
            }
            gemm_nn_acc(
                m,
                nrhs,
                w,
                -T::one(),
                &diag[j1 + j0 * ldd..],
                ldd,
                &tile,
                w,
                &mut x[j1..],
                ldx,
            );
        }
        j0 = j1;
    }
}

/// Blocked multi-RHS backward substitution `Lᵀ · X = B` in place, `L` unit
/// lower triangular — the mirror of [`solve_unit_lower_panel`].
///
/// Column tiles are processed descending; the contribution of the already
/// solved rows below tile `[j0, j1)` is `L[j1.., j0..j1]ᵀ · X[j1.., :]`, a
/// single [`gemm_tn_acc`] per tile. `nrhs == 1` delegates to the scalar
/// sweep unchanged.
pub fn solve_unit_lower_trans_panel<T: Scalar>(
    n: usize,
    diag: &[T],
    ldd: usize,
    x: &mut [T],
    nrhs: usize,
    ldx: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    if nrhs == 1 || n <= NB_TRSM {
        return solve_unit_lower_trans(n, diag, ldd, x, nrhs, ldx);
    }
    assert!(ldd >= n && ldx >= n);
    let mut tile = vec![T::zero(); NB_TRSM * nrhs];
    let n_tiles = n.div_ceil(NB_TRSM);
    for ti in (0..n_tiles).rev() {
        let j0 = ti * NB_TRSM;
        let j1 = (j0 + NB_TRSM).min(n);
        let w = j1 - j0;
        let m_below = n - j1;
        if m_below > 0 {
            // tile ← L[j1.., j0..j1]ᵀ · X[j1.., :], then subtract: the
            // gemm lands in scratch so the final rows of `x` stay borrowed
            // immutably as the B operand.
            tile[..w * nrhs].fill(T::zero());
            gemm_tn_acc(
                w,
                nrhs,
                m_below,
                T::one(),
                &diag[j1 + j0 * ldd..],
                ldd,
                &x[j1..],
                ldx,
                &mut tile[..w * nrhs],
                w,
            );
            for r in 0..nrhs {
                let xr = &mut x[r * ldx + j0..r * ldx + j1];
                for (xv, &tv) in xr.iter_mut().zip(&tile[r * w..r * w + w]) {
                    *xv -= tv;
                }
            }
        }
        // In-tile scalar backward sweep.
        for r in 0..nrhs {
            let xr = &mut x[r * ldx..r * ldx + n];
            for j in (j0..j1).rev() {
                let mut v = xr[j];
                for i in (j + 1)..j1 {
                    v -= diag[i + j * ldd] * xr[i];
                }
                xr[j] = v;
            }
        }
    }
}

/// Forward substitution with a **non-unit** lower triangular factor.
pub fn solve_lower<T: Scalar>(
    n: usize,
    diag: &[T],
    ldd: usize,
    x: &mut [T],
    nrhs: usize,
    ldx: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    assert!(ldd >= n && ldx >= n);
    for r in 0..nrhs {
        let xr = &mut x[r * ldx..r * ldx + n];
        for j in 0..n {
            let v = xr[j] * diag[j + j * ldd].recip();
            xr[j] = v;
            if v == T::zero() {
                continue;
            }
            for i in (j + 1)..n {
                xr[i] -= diag[i + j * ldd] * v;
            }
        }
    }
}

/// Backward substitution with a **non-unit** lower triangular factor
/// (`Lᵀ X = B`).
pub fn solve_lower_trans<T: Scalar>(
    n: usize,
    diag: &[T],
    ldd: usize,
    x: &mut [T],
    nrhs: usize,
    ldx: usize,
) {
    if n == 0 || nrhs == 0 {
        return;
    }
    assert!(ldd >= n && ldx >= n);
    for r in 0..nrhs {
        let xr = &mut x[r * ldx..r * ldx + n];
        for j in (0..n).rev() {
            let mut v = xr[j];
            for i in (j + 1)..n {
                v -= diag[i + j * ldd] * xr[i];
            }
            xr[j] = v * diag[j + j * ldd].recip();
        }
    }
}

/// `x(j) /= d[j]` row-scaling over `nrhs` columns — the diagonal solve
/// `D·y = x` between the two triangular sweeps of `L·D·Lᵀ`.
pub fn scale_rows_by_diag_inv<T: Scalar>(n: usize, d: &[T], x: &mut [T], nrhs: usize, ldx: usize) {
    if n == 0 || nrhs == 0 {
        return;
    }
    assert!(d.len() >= n && ldx >= n);
    for r in 0..nrhs {
        let xr = &mut x[r * ldx..r * ldx + n];
        for (xi, &di) in xr.iter_mut().zip(d) {
            *xi *= di.recip();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{deterministic_spd, DenseMat};
    use crate::factor::{ldlt_factor_inplace, llt_factor_inplace};
    use crate::gemm::gemm_nt_acc;

    #[test]
    fn ldlt_panel_solve_reconstructs() {
        // Factor an SPD diag block, push a random panel through the solve,
        // then verify panel · D · Lᵀ reproduces the original panel.
        let n = 6;
        let m = 4;
        let mut diag = deterministic_spd(n, 11);
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let orig = DenseMat::from_fn(m, n, |i, j| (i * 5 + j + 1) as f64 * 0.3);
        let mut panel = orig.clone();
        trsm_ldlt_panel(m, n, diag.as_slice(), n, panel.as_mut_slice(), m);
        // Rebuild: A(i,j) = Σ_p X(i,p) d_p L(j,p), p <= j (L unit lower).
        for j in 0..n {
            for i in 0..m {
                let mut v = 0.0;
                for p in 0..=j {
                    let l = if p == j { 1.0 } else { diag[(j, p)] };
                    v += panel[(i, p)] * diag[(p, p)] * l;
                }
                assert!((v - orig[(i, j)]).abs() < 1e-10, "({i},{j}): {v} vs {}", orig[(i, j)]);
            }
        }
    }

    #[test]
    fn llt_panel_solve_reconstructs() {
        let n = 5;
        let m = 3;
        let mut diag = deterministic_spd(n, 29);
        llt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let orig = DenseMat::from_fn(m, n, |i, j| ((i + 1) as f64) / ((j + 2) as f64));
        let mut panel = orig.clone();
        trsm_llt_panel(m, n, diag.as_slice(), n, panel.as_mut_slice(), m);
        // A = X · Lᵀ with non-unit L.
        let mut rebuilt = DenseMat::zeros(m, n);
        let mut ltri = DenseMat::zeros(n, n);
        for j in 0..n {
            for i in j..n {
                ltri[(i, j)] = diag[(i, j)];
            }
        }
        gemm_nt_acc(m, n, n, 1.0, panel.as_slice(), m, ltri.as_slice(), n, rebuilt.as_mut_slice(), m);
        assert!(rebuilt.max_diff(&orig) < 1e-10);
    }

    #[test]
    fn unit_lower_solves_roundtrip() {
        let n = 8;
        let mut diag = deterministic_spd(n, 3);
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let x0: Vec<f64> = (0..n).map(|i| (i as f64) - 3.5).collect();
        // b = L · x0 with unit lower L.
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut v = x0[i];
            for p in 0..i {
                v += diag[(i, p)] * x0[p];
            }
            b[i] = v;
        }
        solve_unit_lower(n, diag.as_slice(), n, &mut b, 1, n);
        for i in 0..n {
            assert!((b[i] - x0[i]).abs() < 1e-12);
        }
        // And the transposed sweep: b = Lᵀ x0, solve back.
        let mut bt = vec![0.0; n];
        for i in 0..n {
            let mut v = x0[i];
            for p in (i + 1)..n {
                v += diag[(p, i)] * x0[p];
            }
            bt[i] = v;
        }
        solve_unit_lower_trans(n, diag.as_slice(), n, &mut bt, 1, n);
        for i in 0..n {
            assert!((bt[i] - x0[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn nonunit_lower_solves_roundtrip() {
        let n = 7;
        let mut diag = deterministic_spd(n, 17);
        llt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let x0: Vec<f64> = (0..n).map(|i| 1.0 + i as f64 * 0.25).collect();
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut v = 0.0;
            for p in 0..=i {
                v += diag[(i, p)] * x0[p];
            }
            b[i] = v;
        }
        solve_lower(n, diag.as_slice(), n, &mut b, 1, n);
        for i in 0..n {
            assert!((b[i] - x0[i]).abs() < 1e-11);
        }
        let mut bt = vec![0.0; n];
        for i in 0..n {
            let mut v = 0.0;
            for p in i..n {
                v += diag[(p, i)] * x0[p];
            }
            bt[i] = v;
        }
        solve_lower_trans(n, diag.as_slice(), n, &mut bt, 1, n);
        for i in 0..n {
            assert!((bt[i] - x0[i]).abs() < 1e-11);
        }
    }

    #[test]
    fn scale_cols_and_rows() {
        let src = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let d = [2.0, 10.0];
        let mut dst = [0.0; 4];
        scale_cols_by_diag_into(2, 2, &src, 2, &d, &mut dst, 2);
        assert_eq!(dst, [2.0, 4.0, 30.0, 40.0]);

        let mut x = [4.0, 20.0];
        scale_rows_by_diag_inv(2, &d, &mut x, 1, 2);
        assert_eq!(x, [2.0, 2.0]);
    }

    #[test]
    fn panel_solves_match_scalar_sweeps() {
        // A factor big enough to cross several NB_TRSM tiles, with a
        // leading-dimension gap on X, solved both ways: the blocked panel
        // path must agree with the per-RHS scalar sweeps to round-off.
        let n = 3 * NB_TRSM + 7;
        let nrhs = 5;
        let ldx = n + 3;
        let mut diag = deterministic_spd(n, 41);
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let b: Vec<f64> =
            (0..ldx * nrhs).map(|i| ((i % 97) as f64) * 0.03 - 1.1).collect();
        for trans in [false, true] {
            let mut x_ref = b.clone();
            let mut x_panel = b.clone();
            if trans {
                solve_unit_lower_trans(n, diag.as_slice(), n, &mut x_ref, nrhs, ldx);
                solve_unit_lower_trans_panel(n, diag.as_slice(), n, &mut x_panel, nrhs, ldx);
            } else {
                solve_unit_lower(n, diag.as_slice(), n, &mut x_ref, nrhs, ldx);
                solve_unit_lower_panel(n, diag.as_slice(), n, &mut x_panel, nrhs, ldx);
            }
            for r in 0..nrhs {
                for i in 0..n {
                    let (u, v) = (x_ref[r * ldx + i], x_panel[r * ldx + i]);
                    assert!(
                        (u - v).abs() < 1e-9 * u.abs().max(1.0),
                        "trans={trans} rhs {r} row {i}: {u} vs {v}"
                    );
                }
            }
            // The gap rows between columns must stay untouched.
            for r in 0..nrhs {
                for i in n..ldx {
                    assert_eq!(x_panel[r * ldx + i], b[r * ldx + i]);
                }
            }
        }
    }

    #[test]
    fn panel_solve_single_rhs_is_bitwise_scalar() {
        let n = 2 * NB_TRSM + 5;
        let mut diag = deterministic_spd(n, 53);
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64) * 0.17 - 4.0).collect();
        let mut x_ref = b.clone();
        let mut x_panel = b;
        solve_unit_lower(n, diag.as_slice(), n, &mut x_ref, 1, n);
        solve_unit_lower_panel(n, diag.as_slice(), n, &mut x_panel, 1, n);
        assert_eq!(x_ref, x_panel);
        solve_unit_lower_trans(n, diag.as_slice(), n, &mut x_ref, 1, n);
        solve_unit_lower_trans_panel(n, diag.as_slice(), n, &mut x_panel, 1, n);
        assert_eq!(x_ref, x_panel);
    }

    #[test]
    fn multiple_rhs_columns() {
        let n = 5;
        let nrhs = 3;
        let mut diag = deterministic_spd(n, 77);
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let x0 = DenseMat::from_fn(n, nrhs, |i, j| (i + j * n) as f64 * 0.1 - 1.0);
        let mut b = DenseMat::zeros(n, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                let mut v = x0[(i, r)];
                for p in 0..i {
                    v += diag[(i, p)] * x0[(p, r)];
                }
                b[(i, r)] = v;
            }
        }
        solve_unit_lower(n, diag.as_slice(), n, b.as_mut_slice(), nrhs, n);
        assert!(b.max_diff(&x0) < 1e-12);
    }
}
