//! # pastix-kernels
//!
//! Dense BLAS-3 style kernels, scalar types and the polynomial BLAS time
//! model used by the PaStiX reproduction.
//!
//! The parallel sparse solver of the paper expresses the whole numeric
//! factorization in terms of four dense block operations (Fig. 1):
//! diagonal-block `L·D·Lᵀ` factorization, triangular panel solves,
//! `C += α·A·Bᵀ` contribution products, and column scalings by the diagonal
//! `D`. This crate provides those kernels for `f64` and complex-symmetric
//! [`Complex64`] systems, their `L·Lᵀ` counterparts for the multifrontal
//! baseline, and the *time model* of the same kernels that the static
//! scheduler is driven by — the multi-variable polynomial regression the
//! paper describes, together with its automatic calibration routine.
//!
//! Everything is dependency-light and column-major with explicit leading
//! dimensions, so a supernodal column block stored as one contiguous panel
//! can hand arbitrary sub-panels to the kernels without copies.

#![warn(missing_docs)]

pub mod complex;
pub mod dense;
pub mod factor;
pub mod gemm;
pub mod lowrank;
pub mod model;
pub mod pack;
pub mod scalar;
pub mod trsm;

pub use complex::Complex64;
pub use dense::DenseMat;
pub use factor::{ldlt_factor_blocked, ldlt_factor_inplace, llt_factor_blocked, llt_factor_inplace, FactorError, NB_FACTOR};
pub use gemm::{gemm_flops, gemm_nn_acc, gemm_nt_acc, gemm_nt_acc_lower, gemm_tn_acc};
pub use lowrank::{
    compress_block, lr_gemm_nn_acc, lr_gemm_nt_acc, lr_gemm_nt_acc_recompress, lr_gemm_tn_acc,
    lr_trsm_ldlt, LowRankBlock, LrOp, LrRef,
};
pub use pack::{blocking_for, configure_blocking, kernel_mode, BlockSizes, KernelMode, KernelModeGuard};
pub use model::{calibrate_blas_model, fit_poly, BlasModel, KernelClass, PolyCost};
pub use scalar::Scalar;
pub use trsm::{
    scale_cols_by_diag_into, scale_rows_by_diag_inv, solve_lower, solve_lower_trans,
    solve_unit_lower, solve_unit_lower_panel, solve_unit_lower_trans,
    solve_unit_lower_trans_panel, trsm_ldlt_panel, trsm_llt_panel,
};
