//! The scalar abstraction shared by the whole solver stack.
//!
//! The factorization is `L·D·Lᵀ` with the *unconjugated* transpose, so the
//! trait deliberately does not expose a conjugation hook in the kernel API:
//! both `f64` (SPD systems, the paper's experiments) and [`Complex64`]
//! (complex symmetric systems, the paper's motivation) go through identical
//! code paths.

use crate::complex::Complex64;
use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Field scalar used in matrices, factors and right-hand sides.
///
/// Implementations must form a field under the std ops, with `zero()` and
/// `one()` the identities. `magnitude` is used only for diagnostics
/// (residual norms, zero-pivot detection), never to branch inside the
/// factorization itself — the algorithm is pivoting-free, as in the paper.
pub trait Scalar:
    Copy
    + Default
    + PartialEq
    + Debug
    + Display
    + Send
    + Sync
    + 'static
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
{
    /// The additive identity.
    fn zero() -> Self;
    /// The multiplicative identity.
    fn one() -> Self;
    /// Embeds a real number.
    fn from_f64(x: f64) -> Self;
    /// Modulus of the scalar (used for norms and pivot checks).
    fn magnitude(self) -> f64;
    /// Principal square root (needed by the `L·Lᵀ` baseline).
    fn sqrt(self) -> Self;
    /// Multiplicative inverse.
    fn recip(self) -> Self;
    /// True when all components are finite.
    fn is_finite(self) -> bool;
    /// `self * a + b`, fused when the target has a fast hardware FMA.
    ///
    /// The packed microkernel issues one of these per accumulator lane per
    /// depth step; on FMA targets the fusion doubles the floating-point
    /// throughput (and single-rounds, which is at least as accurate).
    /// The default is the unfused product-then-sum.
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn sqrt(self) -> Self {
        self.sqrt()
    }
    #[inline]
    fn recip(self) -> Self {
        1.0 / self
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Only reach for the fused instruction when the hardware has one:
        // without the `fma` target feature `f64::mul_add` falls back to a
        // (correct but very slow) soft-float libm call.
        if cfg!(target_feature = "fma") {
            f64::mul_add(self, a, b)
        } else {
            self * a + b
        }
    }
}

impl Scalar for Complex64 {
    #[inline]
    fn zero() -> Self {
        Complex64::ZERO
    }
    #[inline]
    fn one() -> Self {
        Complex64::ONE
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Complex64::new(x, 0.0)
    }
    #[inline]
    fn magnitude(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn sqrt(self) -> Self {
        Complex64::sqrt(self)
    }
    #[inline]
    fn recip(self) -> Self {
        Complex64::recip(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        Complex64::is_finite(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field_axioms<T: Scalar>(a: T, b: T) {
        assert_eq!(a + T::zero(), a);
        assert_eq!(a * T::one(), a);
        assert_eq!(a + (-a), T::zero());
        let prod = a * b;
        assert_eq!(prod, b * a);
    }

    #[test]
    fn f64_axioms() {
        field_axioms(3.5f64, -2.0f64);
        assert_eq!(4.0f64.sqrt(), 2.0);
        assert_eq!(<f64 as Scalar>::recip(4.0), 0.25);
    }

    #[test]
    fn complex_axioms() {
        field_axioms(Complex64::new(1.0, -2.0), Complex64::new(0.5, 3.0));
        assert_eq!(Complex64::from_f64(2.5), Complex64::new(2.5, 0.0));
    }

    #[test]
    fn magnitude_is_nonnegative() {
        assert!(Complex64::new(-3.0, -4.0).magnitude() == 5.0);
        assert!(<f64 as Scalar>::magnitude(-7.0) == 7.0);
    }

}
