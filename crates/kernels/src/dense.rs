//! Column-major dense matrices and views.
//!
//! All numeric kernels in this crate operate BLAS-style on raw column-major
//! slices with an explicit leading dimension (`lda`), because the solver
//! stores each supernodal column block as one contiguous column-major panel
//! and hands sub-panels to the kernels. [`DenseMat`] is the owned
//! convenience type used by tests, benches and the dense baselines.

use crate::scalar::Scalar;

/// Owned column-major dense matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct DenseMat<T> {
    m: usize,
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> DenseMat<T> {
    /// Zero matrix of shape `m × n`.
    pub fn zeros(m: usize, n: usize) -> Self {
        Self {
            m,
            n,
            data: vec![T::zero(); m * n],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut a = Self::zeros(n, n);
        for i in 0..n {
            a[(i, i)] = T::one();
        }
        a
    }

    /// Builds the matrix entry-wise from a closure `f(row, col)`.
    pub fn from_fn(m: usize, n: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(m * n);
        for j in 0..n {
            for i in 0..m {
                data.push(f(i, j));
            }
        }
        Self { m, n, data }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Leading dimension of the underlying storage (equals `nrows`).
    #[inline]
    pub fn lda(&self) -> usize {
        self.m
    }

    /// Underlying column-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable underlying column-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Column `j` as a slice.
    #[inline]
    pub fn col(&self, j: usize) -> &[T] {
        &self.data[j * self.m..(j + 1) * self.m]
    }

    /// Column `j` as a mutable slice.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [T] {
        &mut self.data[j * self.m..(j + 1) * self.m]
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Self {
        Self::from_fn(self.n, self.m, |i, j| self[(j, i)])
    }

    /// Dense matrix-matrix product `self · rhs` (reference implementation,
    /// O(mnk), used as the test oracle for the fast kernels).
    pub fn matmul(&self, rhs: &Self) -> Self {
        assert_eq!(self.n, rhs.m, "inner dimensions must agree");
        let mut c = Self::zeros(self.m, rhs.n);
        for j in 0..rhs.n {
            for k in 0..self.n {
                let s = rhs[(k, j)];
                for i in 0..self.m {
                    let v = self[(i, k)] * s;
                    c[(i, j)] += v;
                }
            }
        }
        c
    }

    /// Matrix-vector product `self · x`.
    pub fn matvec(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.n);
        let mut y = vec![T::zero(); self.m];
        for j in 0..self.n {
            let s = x[j];
            for (yi, &aij) in y.iter_mut().zip(self.col(j)) {
                *yi += aij * s;
            }
        }
        y
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|v| v.magnitude() * v.magnitude())
            .sum::<f64>()
            .sqrt()
    }

    /// Maximum componentwise modulus of `self − other`.
    pub fn max_diff(&self, other: &Self) -> f64 {
        assert_eq!((self.m, self.n), (other.m, other.n));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).magnitude())
            .fold(0.0, f64::max)
    }

    /// Symmetrizes in place from the lower triangle: `A(i,j) = A(j,i)` for
    /// `i < j`. Used to build full test matrices from lower-triangular data.
    pub fn mirror_lower(&mut self) {
        assert_eq!(self.m, self.n);
        for j in 0..self.n {
            for i in (j + 1)..self.m {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }
}

impl<T: Scalar> std::ops::Index<(usize, usize)> for DenseMat<T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        debug_assert!(i < self.m && j < self.n);
        &self.data[i + j * self.m]
    }
}

impl<T: Scalar> std::ops::IndexMut<(usize, usize)> for DenseMat<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        debug_assert!(i < self.m && j < self.n);
        &mut self.data[i + j * self.m]
    }
}

/// Returns a random-looking but deterministic SPD matrix `n × n` built as
/// `B·Bᵀ + n·I` from a linear-congruential stream; used by tests and benches
/// without pulling a RNG dependency into this crate.
pub fn deterministic_spd(n: usize, seed: u64) -> DenseMat<f64> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let b = DenseMat::from_fn(n, n, |_, _| next());
    let bt = b.transposed();
    let mut a = b.matmul(&bt);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// Copies a rectangular sub-panel between two column-major buffers.
///
/// `src` starts at its own origin with leading dimension `lds`; likewise
/// `dst` with `ldd`. Copies `m × n` entries.
pub fn copy_panel<T: Copy>(m: usize, n: usize, src: &[T], lds: usize, dst: &mut [T], ldd: usize) {
    assert!(m <= lds || n == 0, "source leading dimension too small");
    assert!(m <= ldd || n == 0, "destination leading dimension too small");
    for j in 0..n {
        dst[j * ldd..j * ldd + m].copy_from_slice(&src[j * lds..j * lds + m]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;

    #[test]
    fn index_roundtrip() {
        let mut a = DenseMat::<f64>::zeros(3, 2);
        a[(2, 1)] = 5.0;
        assert_eq!(a[(2, 1)], 5.0);
        assert_eq!(a.col(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn identity_matmul_is_identity_action() {
        let a = DenseMat::<f64>::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let e = DenseMat::<f64>::identity(3);
        assert_eq!(a.matmul(&e), a);
        assert_eq!(e.matmul(&a), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DenseMat::<f64>::from_fn(4, 3, |i, j| (i + 2 * j) as f64);
        let x = vec![1.0, -1.0, 2.0];
        let xm = DenseMat::from_fn(3, 1, |i, _| x[i]);
        let y = a.matvec(&x);
        let ym = a.matmul(&xm);
        for i in 0..4 {
            assert_eq!(y[i], ym[(i, 0)]);
        }
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMat::<f64>::from_fn(2, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn complex_matmul() {
        let i = Complex64::I;
        let a = DenseMat::from_fn(2, 2, |r, c| if r == c { i } else { Complex64::ZERO });
        let sq = a.matmul(&a);
        // (iI)^2 = -I
        assert_eq!(sq[(0, 0)], Complex64::new(-1.0, 0.0));
        assert_eq!(sq[(0, 1)], Complex64::ZERO);
    }

    #[test]
    fn deterministic_spd_is_symmetric_dominant() {
        let a = deterministic_spd(16, 42);
        for i in 0..16 {
            for j in 0..16 {
                assert!((a[(i, j)] - a[(j, i)]).abs() < 1e-12);
            }
            assert!(a[(i, i)] > 0.0);
        }
        // Deterministic across calls.
        let b = deterministic_spd(16, 42);
        assert_eq!(a.max_diff(&b), 0.0);
    }

    #[test]
    fn copy_panel_subblock() {
        let src: Vec<f64> = (0..12).map(|x| x as f64).collect(); // 4x3, lda 4
        let mut dst = vec![0.0; 6]; // 2x3, ldd 2
        copy_panel(2, 3, &src, 4, &mut dst, 2);
        assert_eq!(dst, vec![0.0, 1.0, 4.0, 5.0, 8.0, 9.0]);
    }

    #[test]
    fn mirror_lower_symmetrizes() {
        let mut a = DenseMat::<f64>::from_fn(3, 3, |i, j| if i >= j { (i + 1) as f64 } else { 0.0 });
        a.mirror_lower();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(a[(i, j)], a[(j, i)]);
            }
        }
    }

    #[test]
    fn fro_norm_simple() {
        let a = DenseMat::<f64>::from_fn(2, 2, |_, _| 2.0);
        assert!((a.fro_norm() - 4.0).abs() < 1e-15);
    }
}
