//! Block low-rank (BLR) compression and low-rank-aware update kernels.
//!
//! Modern PaStiX's headline lever beyond static scheduling is compressing
//! large off-diagonal blocks of the factor as `A ≈ U·Vᵀ` with `rank ≪
//! min(m, n)`: a GEMM update against a compressed operand costs
//! `O((m+n)·r·k)` instead of `O(m·n·k)`, and the factor's resident bytes
//! shrink by the same ratio. This module is the numeric core of that
//! feature:
//!
//! - [`compress_block`] — a rank-revealing compressor (full-pivot ACA,
//!   i.e. greedy rank-1 peeling with the largest remaining entry as
//!   pivot) with absolute/relative tolerance and a fallback to dense when
//!   the rank reaches `min(m, n)/2`;
//! - [`lr_gemm_nt_acc`] — the contribution kernel `C += α·A·Bᵀ` with each
//!   operand dense or compressed ([`LrOp`]), used by the comp1d/BMOD
//!   update paths of every solver backend;
//! - [`lr_gemm_nt_acc_recompress`] — the same update into an accumulator
//!   that is *itself* low-rank, recompressing the sum;
//! - [`lr_trsm_ldlt`] — the low-rank form of the panel TRSM of the
//!   `L·D·Lᵀ` supernodal step (solves on the `w×r` coefficient matrix
//!   instead of the full `m×w` block);
//! - [`lr_gemm_nn_acc`] / [`lr_gemm_tn_acc`] — the forward/backward solve
//!   products against a compressed block;
//! - [`LowRankBlock::decompress`] — the decompress path back to dense.
//!
//! All kernels are pure Rust over the [`Scalar`] trait and allocate their
//! own `O((m+n)·r)` scratch; operands follow the column-major convention
//! of the rest of the crate.

use crate::gemm::{gemm_nn_acc, gemm_nt_acc, gemm_tn_acc};
use crate::scalar::Scalar;
use crate::trsm::{scale_rows_by_diag_inv, solve_unit_lower};

/// A block stored in compressed form: `A ≈ U·Vᵀ` with `U` of shape
/// `m × rank` and `V` of shape `n × rank`, both column-major.
#[derive(Debug, Clone, PartialEq)]
pub struct LowRankBlock<T> {
    /// Rows of the represented block.
    pub m: usize,
    /// Columns of the represented block.
    pub n: usize,
    /// Numerical rank of the representation (`u`/`v` column count).
    pub rank: usize,
    /// Left factor, `m × rank` column-major.
    pub u: Vec<T>,
    /// Right factor, `n × rank` column-major.
    pub v: Vec<T>,
}

/// A borrowed view of a low-rank factor pair — the operand form the
/// kernels take, so callers can mix a block's `U` with a substituted `V`
/// (the panel TRSM produces two blocks sharing one `U`).
#[derive(Debug, Clone, Copy)]
pub struct LrRef<'a, T> {
    /// Rows of the represented block.
    pub m: usize,
    /// Columns of the represented block.
    pub n: usize,
    /// Numerical rank.
    pub rank: usize,
    /// Left factor, `m × rank` column-major.
    pub u: &'a [T],
    /// Right factor, `n × rank` column-major.
    pub v: &'a [T],
}

/// One operand of a low-rank-aware GEMM: dense column-major storage or a
/// compressed `U·Vᵀ` pair.
#[derive(Debug, Clone, Copy)]
pub enum LrOp<'a, T> {
    /// Dense column-major storage with leading dimension `ld`.
    Dense {
        /// Backing slice; entry `(i, j)` lives at `a[i + j·ld]`.
        a: &'a [T],
        /// Leading dimension (≥ the operand's row count).
        ld: usize,
    },
    /// A compressed operand.
    Lr(LrRef<'a, T>),
}

impl<T: Scalar> LowRankBlock<T> {
    /// A rank-0 (exactly zero) block of the given shape.
    pub fn zero(m: usize, n: usize) -> Self {
        Self { m, n, rank: 0, u: Vec::new(), v: Vec::new() }
    }

    /// Borrowed operand view of this block.
    #[inline]
    pub fn as_ref(&self) -> LrRef<'_, T> {
        LrRef { m: self.m, n: self.n, rank: self.rank, u: &self.u, v: &self.v }
    }

    /// Resident bytes of the compressed representation.
    pub fn bytes(&self) -> usize {
        (self.u.len() + self.v.len()) * std::mem::size_of::<T>()
    }

    /// Bytes the same block would occupy dense.
    pub fn dense_bytes(&self) -> usize {
        self.m * self.n * std::mem::size_of::<T>()
    }

    /// `true` when the representation is strictly smaller than dense,
    /// i.e. `rank·(m+n) < m·n`.
    pub fn is_profitable(&self) -> bool {
        self.rank * (self.m + self.n) < self.m * self.n
    }

    /// Accumulates the dense form into `c` (column-major, leading
    /// dimension `ldc`): `C += U·Vᵀ`.
    pub fn decompress_into(&self, c: &mut [T], ldc: usize) {
        if self.rank > 0 {
            gemm_nt_acc(self.m, self.n, self.rank, T::one(), &self.u, self.m, &self.v, self.n, c, ldc);
        }
    }

    /// The dense `m × n` column-major form of the block.
    pub fn decompress(&self) -> Vec<T> {
        let mut c = vec![T::zero(); self.m * self.n];
        self.decompress_into(&mut c, self.m.max(1));
        c
    }

    /// Re-runs the rank-revealing compressor on the decompressed block —
    /// the recompression step after accumulating updates has inflated the
    /// stored rank. Unlike [`compress_block`] this never falls back to
    /// dense: the rank is capped at `min(m, n)` and the best
    /// representation found is kept.
    pub fn recompress(&mut self, abs_tol: f64, rel_tol: f64) {
        let mut dense = self.decompress();
        if let Some(r) = aca(self.m, self.n, &mut dense, abs_tol, rel_tol, self.m.min(self.n)) {
            if r.rank <= self.rank {
                *self = r;
            }
        }
    }
}

/// Frobenius norm of a contiguous buffer, accumulated in `f64`.
fn frob_norm<T: Scalar>(a: &[T]) -> f64 {
    a.iter().map(|x| x.magnitude() * x.magnitude()).sum::<f64>().sqrt()
}

/// Full-pivot ACA on the scratch residual `r` (column-major `m × n`,
/// mutated in place): greedily peels rank-1 terms `u·vᵀ` with the largest
/// remaining entry as pivot until `‖R‖_F ≤ max(abs_tol, rel_tol·‖A‖_F)`
/// or `cap` terms have been taken. Returns `None` when the tolerance was
/// not reached within `cap` terms or a non-finite pivot appeared.
fn aca<T: Scalar>(
    m: usize,
    n: usize,
    r: &mut [T],
    abs_tol: f64,
    rel_tol: f64,
    cap: usize,
) -> Option<LowRankBlock<T>> {
    let norm_a = frob_norm(r);
    if !norm_a.is_finite() {
        return None;
    }
    let thresh = abs_tol.max(rel_tol * norm_a);
    let mut u: Vec<T> = Vec::new();
    let mut v: Vec<T> = Vec::new();
    let mut rank = 0usize;
    while frob_norm(r) > thresh {
        if rank >= cap {
            return None;
        }
        // Full pivoting: the largest remaining entry.
        let (mut pi, mut pj, mut pmag) = (0usize, 0usize, 0.0f64);
        for j in 0..n {
            for i in 0..m {
                let mag = r[i + j * m].magnitude();
                if mag > pmag {
                    (pi, pj, pmag) = (i, j, mag);
                }
            }
        }
        let piv = r[pi + pj * m];
        if !piv.is_finite() {
            return None;
        }
        if pmag == 0.0 {
            // Residual norm above threshold but no nonzero entry left can
            // only happen through rounding in the norm; stop cleanly.
            break;
        }
        let pr = piv.recip();
        let u0 = u.len();
        let v0 = v.len();
        u.extend((0..m).map(|i| r[i + pj * m]));
        v.extend((0..n).map(|j| r[pi + j * m] * pr));
        for j in 0..n {
            let vj = v[v0 + j];
            if vj == T::zero() {
                continue;
            }
            for i in 0..m {
                r[i + j * m] -= u[u0 + i] * vj;
            }
        }
        rank += 1;
    }
    Some(LowRankBlock { m, n, rank, u, v })
}

/// Rank-revealing compression of the dense `m × n` block at `a` (column
/// major, leading dimension `lda`). Peels rank-1 terms until the residual
/// satisfies `‖A − U·Vᵀ‖_F ≤ max(abs_tol, rel_tol·‖A‖_F)`; returns `None`
/// — the caller keeps the block dense — when the representation would not
/// pay for itself (`rank·(m+n) ≥ m·n`) or the block contains non-finite
/// entries. Peeling stops as soon as the rank can no longer be
/// profitable, so an incompressible block costs `O(m·n·mn/(m+n))` at
/// worst, not a full `O(m·n·min(m,n))` decomposition.
pub fn compress_block<T: Scalar>(
    m: usize,
    n: usize,
    a: &[T],
    lda: usize,
    abs_tol: f64,
    rel_tol: f64,
) -> Option<LowRankBlock<T>> {
    if m == 0 || n == 0 {
        return Some(LowRankBlock::zero(m, n));
    }
    assert!(lda >= m && a.len() >= (n - 1) * lda + m);
    let mut r = vec![T::zero(); m * n];
    for j in 0..n {
        r[j * m..j * m + m].copy_from_slice(&a[j * lda..j * lda + m]);
    }
    let cap = (m * n) / (m + n);
    let lr = aca(m, n, &mut r, abs_tol, rel_tol, cap)?;
    if !lr.is_profitable() {
        return None;
    }
    Some(lr)
}

/// `C(m×n) += α · A·Bᵀ` with `A: m×k` and `B: n×k` each dense or
/// compressed, into dense column-major `C`. This is the contribution
/// kernel of the factorization update paths: the four dispatch arms pick
/// the cheapest association for the representations at hand, and the
/// dense×dense arm is exactly [`gemm_nt_acc`] (bitwise-identical to the
/// uncompressed path).
pub fn lr_gemm_nt_acc<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: LrOp<'_, T>,
    b: LrOp<'_, T>,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 {
        return;
    }
    match (a, b) {
        (LrOp::Dense { a, ld: lda }, LrOp::Dense { a: b, ld: ldb }) => {
            gemm_nt_acc(m, n, k, alpha, a, lda, b, ldb, c, ldc);
        }
        (LrOp::Lr(a), LrOp::Dense { a: b, ld: ldb }) => {
            debug_assert_eq!((a.m, a.n), (m, k));
            if a.rank == 0 {
                return;
            }
            // C += α·U_a·(B·V_a)ᵀ — k·n·r + m·n·r flops instead of m·n·k.
            let mut t = vec![T::zero(); n * a.rank];
            gemm_nn_acc(n, a.rank, k, T::one(), b, ldb, a.v, k, &mut t, n);
            gemm_nt_acc(m, n, a.rank, alpha, a.u, m, &t, n, c, ldc);
        }
        (LrOp::Dense { a, ld: lda }, LrOp::Lr(b)) => {
            debug_assert_eq!((b.m, b.n), (n, k));
            if b.rank == 0 {
                return;
            }
            // C += α·(A·V_b)·U_bᵀ.
            let mut t = vec![T::zero(); m * b.rank];
            gemm_nn_acc(m, b.rank, k, T::one(), a, lda, b.v, k, &mut t, m);
            gemm_nt_acc(m, n, b.rank, alpha, &t, m, b.u, n, c, ldc);
        }
        (LrOp::Lr(a), LrOp::Lr(b)) => {
            debug_assert_eq!((a.m, a.n), (m, k));
            debug_assert_eq!((b.m, b.n), (n, k));
            if a.rank == 0 || b.rank == 0 {
                return;
            }
            // C += α·U_a·(V_aᵀ·V_b)·U_bᵀ, associated through the small
            // r_a × r_b core.
            let mut mid = vec![T::zero(); a.rank * b.rank];
            gemm_tn_acc(a.rank, b.rank, k, T::one(), a.v, k, b.v, k, &mut mid, a.rank);
            let mut t = vec![T::zero(); m * b.rank];
            gemm_nn_acc(m, b.rank, a.rank, T::one(), a.u, m, &mid, a.rank, &mut t, m);
            gemm_nt_acc(m, n, b.rank, alpha, &t, m, b.u, n, c, ldc);
        }
    }
}

/// `C ← recompress(C + α·A·Bᵀ)` where the accumulator `C` is itself
/// stored low-rank: the update lands in a dense scratch of `C`, then the
/// rank-revealing compressor re-runs on the sum. The accumulated rank can
/// only grow up to `min(m, n)` (never a dense fallback — the accumulator
/// stays in LR form), and shrinks again whenever updates cancel.
pub fn lr_gemm_nt_acc_recompress<T: Scalar>(
    c: &mut LowRankBlock<T>,
    k: usize,
    alpha: T,
    a: LrOp<'_, T>,
    b: LrOp<'_, T>,
    abs_tol: f64,
    rel_tol: f64,
) {
    let (m, n) = (c.m, c.n);
    if m == 0 || n == 0 {
        return;
    }
    let mut dense = c.decompress();
    lr_gemm_nt_acc(m, n, k, alpha, a, b, &mut dense, m);
    match aca(m, n, &mut dense.clone(), abs_tol, rel_tol, m.min(n)) {
        Some(r) => *c = r,
        None => {
            // Non-finite data: keep the exact dense sum as the full-rank
            // pair `U = sum, V = I` so no update is ever dropped.
            let mut v = vec![T::zero(); n * n];
            for j in 0..n {
                v[j + j * n] = T::one();
            }
            *c = LowRankBlock { m, n, rank: n, u: dense, v };
        }
    }
}

/// Low-rank panel TRSM of the supernodal `L·D·Lᵀ` step.
///
/// The dense step maps the assembled block `A` to `L_blok = A·L⁻ᵀ·D⁻¹`
/// and its contribution form `F = L_blok·D`. For `A = U·Vᵀ` both results
/// share `U`:
///
/// ```text
/// L_blok = U·(D⁻¹·L⁻¹·V)ᵀ        F = U·(L⁻¹·V)ᵀ
/// ```
///
/// so the triangular solve runs on the `w × rank` coefficient `V` instead
/// of the full `m × w` block. On return `lr.v` holds `D⁻¹·L⁻¹·V` (the
/// factor block) and the returned vector holds `L⁻¹·V` (the `V` of `F`).
///
/// `diag` is the factored `w × w` diagonal block (unit lower `L` below
/// the diagonal, leading dimension `ldd`), `d` its diagonal entries.
pub fn lr_trsm_ldlt<T: Scalar>(
    w: usize,
    diag: &[T],
    ldd: usize,
    d: &[T],
    lr: &mut LowRankBlock<T>,
) -> Vec<T> {
    assert_eq!(lr.n, w, "block columns must match the panel width");
    solve_unit_lower(w, diag, ldd, &mut lr.v, lr.rank, w);
    let vf = lr.v.clone();
    scale_rows_by_diag_inv(w, d, &mut lr.v, lr.rank, w);
    vf
}

/// `Y(m×nrhs) += α · (U·Vᵀ)·X` with `X: n×nrhs` — the forward-solve
/// product against a compressed block, associated through the rank:
/// `Y += α·U·(Vᵀ·X)`.
pub fn lr_gemm_nn_acc<T: Scalar>(
    alpha: T,
    a: LrRef<'_, T>,
    x: &[T],
    nrhs: usize,
    ldx: usize,
    y: &mut [T],
    ldy: usize,
) {
    if a.rank == 0 || a.m == 0 || nrhs == 0 {
        return;
    }
    let mut t = vec![T::zero(); a.rank * nrhs];
    gemm_tn_acc(a.rank, nrhs, a.n, T::one(), a.v, a.n, x, ldx, &mut t, a.rank);
    gemm_nn_acc(a.m, nrhs, a.rank, alpha, a.u, a.m, &t, a.rank, y, ldy);
}

/// `C(n×nrhs) += α · (U·Vᵀ)ᵀ·B` with `B: m×nrhs` — the backward-solve
/// product against a compressed block: `C += α·V·(Uᵀ·B)`.
pub fn lr_gemm_tn_acc<T: Scalar>(
    alpha: T,
    a: LrRef<'_, T>,
    b: &[T],
    nrhs: usize,
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if a.rank == 0 || a.n == 0 || nrhs == 0 {
        return;
    }
    let mut t = vec![T::zero(); a.rank * nrhs];
    gemm_tn_acc(a.rank, nrhs, a.m, T::one(), a.u, a.m, b, ldb, &mut t, a.rank);
    gemm_nn_acc(a.n, nrhs, a.rank, alpha, a.v, a.n, &t, a.rank, c, ldc);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::deterministic_spd;
    use crate::factor::ldlt_factor_inplace;

    /// Deterministic dense block of exact rank `r` (plus optional noise).
    fn rank_r_block(m: usize, n: usize, r: usize, noise: f64, seed: u64) -> Vec<T64> {
        let mut a = vec![0.0f64; m * n];
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        for _ in 0..r {
            let u: Vec<f64> = (0..m).map(|_| next()).collect();
            let v: Vec<f64> = (0..n).map(|_| next()).collect();
            for j in 0..n {
                for i in 0..m {
                    a[i + j * m] += u[i] * v[j];
                }
            }
        }
        for x in a.iter_mut() {
            *x += noise * next();
        }
        a
    }
    type T64 = f64;

    fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn compress_recovers_exact_low_rank() {
        let (m, n, r) = (24, 16, 3);
        let a = rank_r_block(m, n, r, 0.0, 7);
        let lr = compress_block(m, n, &a, m, 1e-12, 1e-12).expect("rank-3 block must compress");
        assert!(lr.rank <= r + 1, "rank {} for an exact rank-{r} block", lr.rank);
        let back = lr.decompress();
        let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(max_abs_diff(&a, &back) <= 1e-10 * norm.max(1.0));
    }

    #[test]
    fn compress_respects_relative_tolerance() {
        let (m, n) = (20, 20);
        let a = rank_r_block(m, n, 2, 1e-6, 3);
        let tol = 1e-4;
        let lr = compress_block(m, n, &a, m, 0.0, tol).expect("noisy rank-2 compresses at 1e-4");
        let back = lr.decompress();
        let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        let resid: f64 =
            a.iter().zip(&back).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt();
        assert!(resid <= tol * norm * 1.0001, "residual {resid} > {} ", tol * norm);
    }

    #[test]
    fn full_rank_block_falls_back_to_dense() {
        // Identity-dominated block: singular values all ~1, incompressible.
        let n = 12;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            a[i + i * n] = 1.0 + i as f64 * 0.01;
        }
        assert!(compress_block(n, n, &a, n, 0.0, 1e-8).is_none());
    }

    #[test]
    fn zero_block_compresses_to_rank_zero() {
        let a = vec![0.0f64; 8 * 5];
        let lr = compress_block(8, 5, &a, 8, 0.0, 1e-10).unwrap();
        assert_eq!(lr.rank, 0);
        assert!(lr.decompress().iter().all(|&x| x == 0.0));
        assert_eq!(lr.bytes(), 0);
        assert!(lr.is_profitable());
    }

    #[test]
    fn lr_gemm_all_arms_match_dense() {
        let (m, n, k) = (14, 10, 12);
        let a = rank_r_block(m, k, 2, 0.0, 11);
        let b = rank_r_block(n, k, 3, 0.0, 12);
        let la = compress_block(m, k, &a, m, 0.0, 1e-13).unwrap();
        let lb = compress_block(n, k, &b, n, 0.0, 1e-13).unwrap();
        let mut want = vec![0.5f64; m * n];
        gemm_nt_acc(m, n, k, -1.0, &a, m, &b, n, &mut want, m);
        let arms: [(LrOp<'_, f64>, LrOp<'_, f64>); 4] = [
            (LrOp::Dense { a: &a, ld: m }, LrOp::Dense { a: &b, ld: n }),
            (LrOp::Lr(la.as_ref()), LrOp::Dense { a: &b, ld: n }),
            (LrOp::Dense { a: &a, ld: m }, LrOp::Lr(lb.as_ref())),
            (LrOp::Lr(la.as_ref()), LrOp::Lr(lb.as_ref())),
        ];
        for (i, (oa, ob)) in arms.into_iter().enumerate() {
            let mut c = vec![0.5f64; m * n];
            lr_gemm_nt_acc(m, n, k, -1.0, oa, ob, &mut c, m);
            assert!(
                max_abs_diff(&want, &c) <= 1e-9,
                "arm {i}: max dev {}",
                max_abs_diff(&want, &c)
            );
        }
    }

    #[test]
    fn recompressing_accumulator_tracks_dense_sum() {
        let (m, n, k) = (12, 9, 8);
        let mut acc = LowRankBlock::<f64>::zero(m, n);
        let mut dense_acc = vec![0.0f64; m * n];
        for step in 0..4u64 {
            let a = rank_r_block(m, k, 2, 0.0, 20 + step);
            let b = rank_r_block(n, k, 2, 0.0, 40 + step);
            let la = compress_block(m, k, &a, m, 0.0, 1e-13).unwrap();
            lr_gemm_nt_acc_recompress(
                &mut acc,
                k,
                -1.0,
                LrOp::Lr(la.as_ref()),
                LrOp::Dense { a: &b, ld: n },
                0.0,
                1e-12,
            );
            gemm_nt_acc(m, n, k, -1.0, &a, m, &b, n, &mut dense_acc, m);
        }
        let norm = dense_acc.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(max_abs_diff(&acc.decompress(), &dense_acc) <= 1e-9 * norm.max(1.0));
        assert!(acc.rank <= m.min(n));
        // Cancelling the whole sum recompresses back toward rank 0.
        let dneg: Vec<f64> = dense_acc.iter().map(|x| -x).collect();
        let mut eye = vec![0.0f64; n * n];
        for j in 0..n {
            eye[j + j * n] = 1.0;
        }
        // The sum is now ≈ 0; an absolute tolerance at the round-off scale
        // of the original data recompresses it back to (near) rank 0.
        lr_gemm_nt_acc_recompress(
            &mut acc,
            n,
            1.0,
            LrOp::Dense { a: &dneg, ld: m },
            LrOp::Dense { a: &eye, ld: n },
            1e-8 * norm.max(1.0),
            0.0,
        );
        assert!(acc.rank <= 2, "cancelled accumulator kept rank {}", acc.rank);
    }

    /// Dense form of a borrowed factor pair.
    fn dense_of(r: &LrRef<'_, f64>) -> Vec<f64> {
        let mut c = vec![0.0f64; r.m * r.n];
        if r.rank > 0 {
            gemm_nt_acc(r.m, r.n, r.rank, 1.0, r.u, r.m, r.v, r.n, &mut c, r.m);
        }
        c
    }

    #[test]
    fn lr_trsm_matches_dense_trsm() {
        use crate::trsm::{scale_cols_by_diag_into, trsm_ldlt_panel};
        let w = 8;
        let m = 15;
        // SPD diagonal block, LDLᵀ-factored.
        let spd = deterministic_spd(w, 5);
        let mut diag = spd.as_slice().to_vec();
        ldlt_factor_inplace(w, &mut diag, w).unwrap();
        let d: Vec<f64> = (0..w).map(|t| diag[t + t * w]).collect();
        let a = rank_r_block(m, w, 2, 0.0, 9);
        // Dense reference: L_blok = A·L⁻ᵀ·D⁻¹ and F = L_blok·D.
        let mut dense_l = a.clone();
        trsm_ldlt_panel(m, w, &diag, w, &mut dense_l, m);
        let mut dense_f = vec![0.0f64; m * w];
        scale_cols_by_diag_into(m, w, &dense_l, m, &d, &mut dense_f, m);
        // Low-rank path.
        let mut lr = compress_block(m, w, &a, m, 0.0, 1e-13).unwrap();
        let vf = lr_trsm_ldlt(w, &diag, w, &d, &mut lr);
        let lr_l = lr.decompress();
        let lr_f = dense_of(&LrRef { m, n: w, rank: lr.rank, u: &lr.u, v: &vf });
        assert!(max_abs_diff(&dense_l, &lr_l) <= 1e-9);
        assert!(max_abs_diff(&dense_f, &lr_f) <= 1e-9);
    }

    #[test]
    fn solve_products_match_dense() {
        let (m, n, nrhs) = (13, 9, 3);
        let a = rank_r_block(m, n, 3, 0.0, 5);
        let la = compress_block(m, n, &a, m, 0.0, 1e-13).unwrap();
        let x = rank_r_block(n, nrhs, nrhs.min(n), 0.0, 6);
        let bm = rank_r_block(m, nrhs, nrhs.min(m), 0.0, 8);

        let mut want = vec![1.0f64; m * nrhs];
        gemm_nn_acc(m, nrhs, n, -1.0, &a, m, &x, n, &mut want, m);
        let mut got = vec![1.0f64; m * nrhs];
        lr_gemm_nn_acc(-1.0, la.as_ref(), &x, nrhs, n, &mut got, m);
        assert!(max_abs_diff(&want, &got) <= 1e-9);

        let mut want_t = vec![1.0f64; n * nrhs];
        gemm_tn_acc(n, nrhs, m, 1.0, &a, m, &bm, m, &mut want_t, n);
        let mut got_t = vec![1.0f64; n * nrhs];
        lr_gemm_tn_acc(1.0, la.as_ref(), &bm, nrhs, m, &mut got_t, n);
        assert!(max_abs_diff(&want_t, &got_t) <= 1e-9);
    }

    #[test]
    fn recompress_shrinks_inflated_rank() {
        let (m, n) = (16, 12);
        let a = rank_r_block(m, n, 2, 0.0, 21);
        // Build an artificially rank-6 representation of the rank-2 block.
        let mut lr = compress_block(m, n, &a, m, 0.0, 1e-13).unwrap();
        let extra = rank_r_block(m, n, 4, 0.0, 22);
        let le = compress_block(m, n, &extra, m, 0.0, 1e-13).unwrap();
        lr.rank += le.rank;
        lr.u.extend_from_slice(&le.u);
        lr.v.extend_from_slice(&le.v);
        let mut minus = lr.clone();
        minus.u = le.u.iter().map(|x| -x).collect();
        minus.v = le.v.clone();
        minus.rank = le.rank;
        lr.rank += minus.rank;
        lr.u.extend_from_slice(&minus.u);
        lr.v.extend_from_slice(&minus.v);
        let before = lr.rank;
        lr.recompress(0.0, 1e-10);
        assert!(lr.rank < before, "recompress kept rank {before}");
        let norm = a.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(max_abs_diff(&lr.decompress(), &a) <= 1e-8 * norm.max(1.0));
    }
}
