//! The BLAS time model.
//!
//! The paper's mapper is "fully driven" by a cost model of the dense block
//! computations: *"we estimate the workload and message passing latency by
//! using a BLAS and communication network time model, which is automatically
//! calibrated on the target architecture"* and *"a multi-variable polynomial
//! regression has been used to build an analytical model of these
//! routines"*. This module implements exactly that device: each kernel class
//! gets a polynomial in `(m, n, k)` with the eight monomials
//! `{1, m, n, k, mn, mk, nk, mnk}`, fitted by linear least squares on
//! measured timings.
//!
//! The model deliberately captures the fact that BLAS-3 efficiency is *"far
//! from being linear in terms of number of operations"*: the low-order terms
//! price per-call and per-column overheads that dominate on small blocks.

use crate::factor::{ldlt_factor_inplace, llt_factor_inplace};
use crate::gemm::gemm_nt_acc;

use crate::trsm::{solve_lower, solve_lower_trans, trsm_ldlt_panel};
use pastix_json::{num_arr, obj, Json, JsonError};
use std::time::Instant;

/// Number of monomial features in the polynomial cost model.
pub const N_FEATURES: usize = 8;

/// Evaluates the monomial feature vector `{1, m, n, k, mn, mk, nk, mnk}`.
#[inline]
pub fn features(m: f64, n: f64, k: f64) -> [f64; N_FEATURES] {
    [1.0, m, n, k, m * n, m * k, n * k, m * n * k]
}

/// A fitted polynomial cost (seconds) for one kernel class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolyCost {
    /// Coefficients over [`features`], in seconds.
    pub coef: [f64; N_FEATURES],
}

impl PolyCost {
    /// Predicted time in seconds for a `(m, n, k)` instance. Clamped below
    /// by zero: a least-squares fit may go slightly negative at the corners
    /// of the sampled domain and a scheduler must never see negative costs.
    #[inline]
    pub fn eval(&self, m: usize, n: usize, k: usize) -> f64 {
        let f = features(m as f64, n as f64, k as f64);
        let t: f64 = self.coef.iter().zip(&f).map(|(c, x)| c * x).sum();
        t.max(0.0)
    }

    /// A pure flop-rate model: `flops(m,n,k)·per_flop + fixed`.
    pub fn from_rate(per_flop_mnk: f64, fixed: f64) -> Self {
        let mut coef = [0.0; N_FEATURES];
        coef[0] = fixed;
        coef[7] = per_flop_mnk;
        Self { coef }
    }

    /// JSON form: the coefficient array.
    pub fn to_json(&self) -> Json {
        num_arr(self.coef)
    }

    /// Parses the JSON form produced by [`PolyCost::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            coef: v.as_f64_array::<N_FEATURES>()?,
        })
    }
}

/// One timing observation: `(m, n, k, seconds)`.
pub type Sample = (usize, usize, usize, f64);

/// Fits a [`PolyCost`] by linear least squares (normal equations, solved
/// with this crate's own Cholesky). Requires at least [`N_FEATURES`]
/// samples spanning the feature space; a tiny Tikhonov ridge keeps the
/// normal matrix positive definite when the design is degenerate (e.g. all
/// samples share `n = 1`).
pub fn fit_poly(samples: &[Sample]) -> PolyCost {
    assert!(
        samples.len() >= N_FEATURES,
        "need at least {N_FEATURES} samples, got {}",
        samples.len()
    );
    let nf = N_FEATURES;
    // Normal matrix G = XᵀX (column-major lower), rhs = Xᵀy.
    let mut g = vec![0.0f64; nf * nf];
    let mut rhs = vec![0.0f64; nf];
    for &(m, n, k, t) in samples {
        let f = features(m as f64, n as f64, k as f64);
        for j in 0..nf {
            rhs[j] += f[j] * t;
            for i in j..nf {
                g[i + j * nf] += f[i] * f[j];
            }
        }
    }
    // Jacobi scaling: the monomial columns span many orders of magnitude,
    // so solve the symmetrically scaled system S·G·S (Sᵢ = G_ii^{-1/2})
    // instead — this tames the conditioning enough for a Cholesky solve.
    let mut s = [0.0f64; N_FEATURES];
    for (i, si) in s.iter_mut().enumerate() {
        let d = g[i + i * nf];
        *si = if d > 0.0 { d.sqrt().recip() } else { 1.0 };
    }
    for j in 0..nf {
        for i in j..nf {
            g[i + j * nf] *= s[i] * s[j];
        }
        rhs[j] *= s[j];
    }
    // Tiny ridge keeps the scaled matrix SPD when the design is degenerate
    // (e.g. every sample shares n = 1).
    for i in 0..nf {
        g[i + i * nf] += 1e-10;
    }
    llt_factor_inplace(nf, &mut g, nf).expect("regularized normal matrix must be SPD");
    solve_lower(nf, &g, nf, &mut rhs, 1, nf);
    solve_lower_trans(nf, &g, nf, &mut rhs, 1, nf);
    let mut coef = [0.0; N_FEATURES];
    for (c, (r, si)) in coef.iter_mut().zip(rhs.iter().zip(&s)) {
        *c = r * si;
    }
    PolyCost { coef }
}

/// The kernel classes priced by the model, mirroring the dense operations of
/// the factorization algorithm (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// `C += α A·Bᵀ` contribution computation (`m×k · k×n`).
    GemmNt,
    /// Panel solve `X·Lᵀ·D⁻¹` (`m` rows against an order-`n` diagonal block).
    TrsmPanel,
    /// Dense `L·D·Lᵀ` of an order-`n` diagonal block.
    FactorLdlt,
    /// Dense `L·Lᵀ` of an order-`n` diagonal block (baseline).
    FactorLlt,
    /// Column scaling `F = L·D` (`m×n`).
    ScaleCols,
}

/// Calibrated (or default) time model for every kernel class.
#[derive(Debug, Clone, PartialEq)]
pub struct BlasModel {
    /// GEMM `C += A·Bᵀ` cost, arguments `(m, n, k)`.
    pub gemm_nt: PolyCost,
    /// Panel solve cost, arguments `(m, n, n)`.
    pub trsm_panel: PolyCost,
    /// `L·D·Lᵀ` diagonal factor cost, arguments `(n, n, n)`.
    pub factor_ldlt: PolyCost,
    /// `L·Lᵀ` diagonal factor cost, arguments `(n, n, n)`.
    pub factor_llt: PolyCost,
    /// `F = L·D` scaling cost, arguments `(m, n, 1)`.
    pub scale_cols: PolyCost,
}

impl BlasModel {
    /// Predicted seconds for a kernel instance.
    pub fn cost(&self, class: KernelClass, m: usize, n: usize, k: usize) -> f64 {
        match class {
            KernelClass::GemmNt => self.gemm_nt.eval(m, n, k),
            KernelClass::TrsmPanel => self.trsm_panel.eval(m, n, k),
            KernelClass::FactorLdlt => self.factor_ldlt.eval(n, n, n),
            KernelClass::FactorLlt => self.factor_llt.eval(n, n, n),
            KernelClass::ScaleCols => self.scale_cols.eval(m, n, 1),
        }
    }

    /// JSON form: one coefficient array per kernel class.
    pub fn to_json(&self) -> Json {
        obj([
            ("gemm_nt", self.gemm_nt.to_json()),
            ("trsm_panel", self.trsm_panel.to_json()),
            ("factor_ldlt", self.factor_ldlt.to_json()),
            ("factor_llt", self.factor_llt.to_json()),
            ("scale_cols", self.scale_cols.to_json()),
        ])
    }

    /// Parses the JSON form produced by [`BlasModel::to_json`].
    pub fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(Self {
            gemm_nt: PolyCost::from_json(v.field("gemm_nt")?)?,
            trsm_panel: PolyCost::from_json(v.field("trsm_panel")?)?,
            factor_ldlt: PolyCost::from_json(v.field("factor_ldlt")?)?,
            factor_llt: PolyCost::from_json(v.field("factor_llt")?)?,
            scale_cols: PolyCost::from_json(v.field("scale_cols")?)?,
        })
    }

    /// A model of one 120 MHz Power2SC thin node of the paper's IBM SP2
    /// (480 MFlop/s peak, ESSL-like BLAS-3 efficiency profile).
    ///
    /// The `mnk` coefficients correspond to ≈450 MFlop/s asymptotic GEMM,
    /// ≈375 MFlop/s LLᵀ and ≈315 MFlop/s LDLᵀ (reproducing the paper's
    /// 1.07 s vs 1.27 s on a dense 1024×1024 factor), while the low-order
    /// terms price loop and cache-miss overheads that strangle small blocks.
    pub fn power2sc() -> Self {
        let flop = |rate_mflops: f64| 1.0 / (rate_mflops * 1e6);
        // GEMM: 2mnk flops at 450 MFlop/s asymptotic.
        let gemm_nt = PolyCost {
            coef: [
                2.0e-6,            // call overhead
                5.0e-9,            // per row
                2.0e-8,            // per column (C write stream start)
                5.0e-9,            // per k
                6.0e-9,            // per C entry (load+store)
                1.5e-9,            // per A entry
                1.5e-9,            // per B entry
                2.0 * flop(450.0), // 2mnk flops
            ],
        };
        // Panel solve: ~m·n² flops at a lower rate plus the D rescale.
        let trsm_panel = PolyCost {
            coef: [1.5e-6, 5.0e-9, 4.0e-8, 0.0, 8.0e-9, 0.0, 2.0e-9, 1.2 * flop(300.0)],
        };
        // Dense factors: n³/3 flops (arguments passed as (n,n,n) so the mnk
        // monomial sees n³).
        let factor_ldlt = PolyCost {
            coef: [3.0e-6, 2.0e-8, 2.0e-8, 2.0e-8, 8.0e-9, 0.0, 0.0, flop(315.0) / 3.0],
        };
        let factor_llt = PolyCost {
            coef: [3.0e-6, 2.0e-8, 2.0e-8, 2.0e-8, 8.0e-9, 0.0, 0.0, flop(375.0) / 3.0],
        };
        let scale_cols = PolyCost {
            coef: [5.0e-7, 2.0e-9, 1.0e-8, 0.0, 4.0e-9, 0.0, 0.0, 0.0],
        };
        Self {
            gemm_nt,
            trsm_panel,
            factor_ldlt,
            factor_llt,
            scale_cols,
        }
    }
}

impl Default for BlasModel {
    fn default() -> Self {
        Self::power2sc()
    }
}

/// Calibration: measures this crate's own kernels over a size grid and fits
/// a [`BlasModel`]. This is the automatic calibration step the paper runs on
/// the target architecture before mapping.
///
/// `reps` controls how many times each instance is timed (the minimum is
/// kept, which rejects scheduler noise).
pub fn calibrate_blas_model(sizes: &[usize], reps: usize) -> BlasModel {
    assert!(!sizes.is_empty());
    let reps = reps.max(1);
    let mut gemm_samples = Vec::new();
    let mut trsm_samples = Vec::new();
    let mut ldlt_samples = Vec::new();
    let mut llt_samples = Vec::new();
    let mut scale_samples = Vec::new();

    let time_min = |f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };

    for &m in sizes {
        for &n in sizes {
            // GEMM over a k grid.
            for &k in sizes {
                let a = vec![1.000001f64; m * k];
                let b = vec![0.999999f64; n * k];
                let mut c = vec![0.0f64; m * n];
                let t = time_min(&mut || {
                    gemm_nt_acc(m, n, k, -1.0f64, &a, m, &b, n, &mut c, m);
                });
                gemm_samples.push((m, n, k, t));
            }
            // Panel solve m rows against an order-n SPD diagonal block.
            let mut diag = crate::dense::deterministic_spd(n, (m * 31 + n) as u64);
            ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
            let mut panel = vec![1.0f64; m * n];
            let t = time_min(&mut || {
                trsm_ldlt_panel(m, n, diag.as_slice(), n, &mut panel, m);
            });
            trsm_samples.push((m, n, n, t));
            // Column scaling.
            let d = vec![2.0f64; n];
            let src = vec![1.0f64; m * n];
            let mut dst = vec![0.0f64; m * n];
            let t = time_min(&mut || {
                crate::trsm::scale_cols_by_diag_into(m, n, &src, m, &d, &mut dst, m);
            });
            scale_samples.push((m, n, 1, t));
        }
        // Dense factor kernels at order m.
        let base = crate::dense::deterministic_spd(m, m as u64 + 1);
        let t = time_min(&mut || {
            let mut a = base.clone();
            ldlt_factor_inplace(m, a.as_mut_slice(), m).unwrap();
        });
        ldlt_samples.push((m, m, m, t));
        let t = time_min(&mut || {
            let mut a = base.clone();
            llt_factor_inplace(m, a.as_mut_slice(), m).unwrap();
        });
        llt_samples.push((m, m, m, t));
    }

    // The factor kernels only vary along one axis; pad the sample sets so
    // the ridge-regularized fit stays sane.
    BlasModel {
        gemm_nt: fit_poly(&gemm_samples),
        trsm_panel: fit_poly(&trsm_samples),
        factor_ldlt: fit_poly(&pad_axis(&ldlt_samples)),
        factor_llt: fit_poly(&pad_axis(&llt_samples)),
        scale_cols: fit_poly(&scale_samples),
    }
}

/// Duplicates single-axis samples so `fit_poly` has ≥ `N_FEATURES` rows.
fn pad_axis(samples: &[Sample]) -> Vec<Sample> {
    let mut v = samples.to_vec();
    while v.len() < N_FEATURES {
        v.extend_from_slice(samples);
    }
    v
}

/// Flop count of a dense order-`n` `L·D·Lᵀ` (multiply-adds counted as two
/// flops, matching the paper's OPC convention).
#[inline]
pub fn ldlt_flops(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + 1.5 * n * n
}

/// Flop count of a dense order-`n` Cholesky.
#[inline]
pub fn llt_flops(n: usize) -> f64 {
    let n = n as f64;
    n * n * n / 3.0 + 0.5 * n * n
}

/// Flop count of an `m × n` panel solve against an order-`n` block.
#[inline]
pub fn trsm_panel_flops(m: usize, n: usize) -> f64 {
    (m as f64) * (n as f64) * (n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_layout() {
        let f = features(2.0, 3.0, 5.0);
        assert_eq!(f, [1.0, 2.0, 3.0, 5.0, 6.0, 10.0, 15.0, 30.0]);
    }

    #[test]
    fn fit_recovers_exact_polynomial() {
        // Generate synthetic times from a known coefficient vector and check
        // that the fit recovers it.
        let truth = PolyCost {
            coef: [1e-6, 2e-9, 3e-9, 4e-9, 5e-10, 6e-10, 7e-10, 8e-11],
        };
        let mut samples = Vec::new();
        for m in [1usize, 4, 16, 64] {
            for n in [2usize, 8, 32] {
                for k in [1usize, 8, 64] {
                    samples.push((m, n, k, truth.eval(m, n, k)));
                }
            }
        }
        let fitted = fit_poly(&samples);
        // Normal equations on monomials up to 64³ are ill-conditioned, so
        // compare *predictions* rather than raw coefficients.
        for &(m, n, k, t) in &samples {
            let p = fitted.eval(m, n, k);
            assert!(
                (p - t).abs() <= 1e-4 * t.abs().max(1e-12),
                "prediction at ({m},{n},{k}): {p} vs {t}"
            );
        }
    }

    #[test]
    fn eval_never_negative() {
        let p = PolyCost {
            coef: [-1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        };
        assert_eq!(p.eval(10, 10, 10), 0.0);
    }

    #[test]
    fn default_model_orders_sanely() {
        let m = BlasModel::default();
        // Bigger instances cost more.
        assert!(m.cost(KernelClass::GemmNt, 64, 64, 64) > m.cost(KernelClass::GemmNt, 8, 8, 8));
        // LLT beats LDLT at 1024 (the paper's ESSL observation).
        let llt = m.cost(KernelClass::FactorLlt, 1024, 1024, 1024);
        let ldlt = m.cost(KernelClass::FactorLdlt, 1024, 1024, 1024);
        assert!(llt < ldlt, "llt {llt} should be cheaper than ldlt {ldlt}");
        // And the ratio is in the ballpark of 1.07/1.27.
        let ratio = llt / ldlt;
        assert!(ratio > 0.7 && ratio < 0.95, "ratio {ratio}");
    }

    #[test]
    fn default_model_absolute_scale() {
        // The paper: ESSL LDLT on 1024 dense ≈ 1.27 s; our model should land
        // within a factor ~1.5 of that.
        let m = BlasModel::default();
        let t = m.cost(KernelClass::FactorLdlt, 1024, 1024, 1024);
        assert!(t > 0.7 && t < 2.0, "t = {t}");
    }

    #[test]
    fn rate_model() {
        let p = PolyCost::from_rate(1e-9, 1e-6);
        assert!((p.eval(10, 10, 10) - (1e-6 + 1e-9 * 1000.0)).abs() < 1e-15);
    }

    #[test]
    fn calibration_smoke() {
        // Tiny grid: just ensure the pipeline runs and produces a model with
        // positive large-size costs and rough monotonicity.
        let model = calibrate_blas_model(&[4, 16, 48], 2);
        let small = model.cost(KernelClass::GemmNt, 8, 8, 8);
        let big = model.cost(KernelClass::GemmNt, 64, 64, 64);
        assert!(big > 0.0);
        assert!(big >= small * 0.5, "big {big} vs small {small}");
    }

    #[test]
    fn flop_formulas() {
        assert!(ldlt_flops(10) > llt_flops(10));
        assert_eq!(trsm_panel_flops(4, 3), 36.0);
    }
}
