//! A minimal double-precision complex type.
//!
//! The PaStiX paper motivates `L·D·Lᵀ` factorization (rather than Cholesky)
//! by the need to solve sparse systems with *complex* coefficients: a complex
//! symmetric (not Hermitian) matrix has no `L·Lᵀ` factorization with real
//! pivots, while `L·D·Lᵀ` without pivoting applies verbatim. We therefore
//! carry a complex scalar through the whole solver stack. The type is
//! implemented in-tree to keep the dependency footprint at the level allowed
//! for this project.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// Arithmetic follows the usual field rules; `sqrt` returns the principal
/// square root. Note that the solver uses the *unconjugated* transpose
/// everywhere (complex symmetric, not Hermitian), matching the paper.
///
/// ```
/// use pastix_kernels::Complex64;
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!(z * z.recip(), Complex64::ONE);
/// ```
#[derive(Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity.
    pub const ZERO: Self = Self::new(0.0, 0.0);
    /// The multiplicative identity.
    pub const ONE: Self = Self::new(1.0, 0.0);
    /// The imaginary unit.
    pub const I: Self = Self::new(0.0, 1.0);

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed without undue overflow via `hypot`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse. Returns a non-finite value for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Principal square root.
    ///
    /// Uses the numerically stable half-angle formulation: for
    /// `z = r·e^{iθ}`, `√z = √r·e^{iθ/2}` with the branch cut on the
    /// negative real axis.
    pub fn sqrt(self) -> Self {
        if self.im == 0.0 {
            if self.re >= 0.0 {
                return Self::new(self.re.sqrt(), 0.0);
            }
            return Self::new(0.0, (-self.re).sqrt().copysign(self.im));
        }
        let r = self.abs();
        // sqrt((r + re)/2) is well conditioned when re >= 0; otherwise use
        // the imaginary component to avoid cancellation.
        let t = ((r + self.re.abs()) * 0.5).sqrt();
        if self.re >= 0.0 {
            Self::new(t, self.im * 0.5 / t)
        } else {
            let s = t.copysign(self.im);
            Self::new(self.im * 0.5 / s, s)
        }
    }

    /// True if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?}{:+?}i)", self.re, self.im)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{:+}i", self.re, self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w ≡ z · w⁻¹
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn field_ops() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * b, Complex64::new(-3.0 - 1.0, 0.5 - 6.0));
        assert!(close(a / b * b, a, 1e-14));
    }

    #[test]
    fn recip_is_inverse() {
        let a = Complex64::new(0.3, -4.2);
        assert!(close(a * a.recip(), Complex64::ONE, 1e-14));
    }

    #[test]
    fn sqrt_positive_real() {
        let z = Complex64::new(4.0, 0.0).sqrt();
        assert_eq!(z, Complex64::new(2.0, 0.0));
    }

    #[test]
    fn sqrt_negative_real() {
        let z = Complex64::new(-9.0, 0.0).sqrt();
        assert!(close(z * z, Complex64::new(-9.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_general_quadrants() {
        for &(re, im) in &[(3.0, 4.0), (-3.0, 4.0), (3.0, -4.0), (-3.0, -4.0), (0.0, 2.0)] {
            let z = Complex64::new(re, im);
            let s = z.sqrt();
            assert!(close(s * s, z, 1e-12), "sqrt({z})^2 = {}", s * s);
            // Principal branch: non-negative real part.
            assert!(s.re >= 0.0 || (s.re == 0.0));
        }
    }

    #[test]
    fn abs_matches_norm_sqr() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(1.5, -2.5);
        assert_eq!(z.conj(), Complex64::new(1.5, 2.5));
        assert_eq!(z.conj().conj(), z);
    }

    #[test]
    fn sum_over_iterator() {
        let s: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(s, Complex64::new(6.0, 4.0));
    }
}
