//! Cache-blocked packed GEMM microkernels.
//!
//! The BLIS-style formulation of the contribution products: the iteration
//! space is tiled `NC × KC × MC` (columns, depth, rows); within a tile the
//! `B` operand is packed into `NR`-wide column slabs and the `A` operand
//! into `MR`-tall row slabs, so the innermost register microkernel streams
//! both packs contiguously and keeps an `MR × NR` accumulator block entirely
//! in registers for the whole `KC` depth. Compared with the seed's axpy
//! formulation (which re-reads the `C` column every fourth `k` step and the
//! whole `A` panel once per `C` column), the packed loop touches each `C`
//! element once per `KC` slice and each packed element once per tile —
//! `(MR + NR) / (MR · NR)` memory operations per multiply-add instead of
//! `~6/4`.
//!
//! Everything is safe Rust: packing pads partial slabs with zeros (a zero
//! contribution is exact), and the write-back only stores the valid
//! `mr × nr` corner, so padding rows of `C` buffers and the strictly upper
//! triangle of diagonal blocks are never touched.
//!
//! The blocking constants are per-`Scalar` (chosen by element size so an
//! `MC × KC` A-pack sits in L2 and a `KC × NC` B-pack in outer cache) and
//! can be overridden **once** per process by a runtime probe
//! ([`configure_blocking`], driven by `pastix-machine`'s
//! `probe_blocking`).

use crate::scalar::Scalar;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Rows of the register microkernel's accumulator block.
pub const MR: usize = 8;
/// Columns of the register microkernel's accumulator block.
pub const NR: usize = 4;

/// Cache-blocking constants of the packed GEMM path: row tile `mc`
/// (A-pack height), depth tile `kc` (pack depth), column tile `nc`
/// (B-pack width). `mc` is kept a multiple of [`MR`] and `nc` of [`NR`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Row-tile height: one A-pack is `mc × kc` scalars (targets L2).
    pub mc: usize,
    /// Depth tile shared by both packs.
    pub kc: usize,
    /// Column-tile width: one B-pack is `kc × nc` scalars (targets L3).
    pub nc: usize,
}

impl BlockSizes {
    /// Rounds the tile sizes to legal values (multiples of the register
    /// block, nothing zero).
    pub fn sanitized(self) -> Self {
        let up = |x: usize, q: usize| x.max(q).div_ceil(q) * q;
        Self {
            mc: up(self.mc, MR),
            kc: self.kc.max(1),
            nc: up(self.nc, NR),
        }
    }

    /// Default blocking for a scalar of `elem_bytes` bytes: A-pack ≈ 224 KB
    /// (half a typical L2), B-pack a few MB.
    pub fn default_for_elem_size(elem_bytes: usize) -> Self {
        match elem_bytes {
            0..=8 => Self {
                mc: 128,
                kc: 224,
                nc: 2048,
            },
            9..=16 => Self {
                mc: 64,
                kc: 128,
                nc: 1024,
            },
            _ => Self {
                mc: 32,
                kc: 64,
                nc: 512,
            },
        }
    }
}

// One configurable slot per scalar width (generic statics do not exist in
// Rust; the kernels are generic but the cache hierarchy only cares about
// bytes). `OnceLock` makes the runtime calibration one-shot and lock-free
// after initialization.
static BLOCK_8: OnceLock<BlockSizes> = OnceLock::new();
static BLOCK_16: OnceLock<BlockSizes> = OnceLock::new();
static BLOCK_OTHER: OnceLock<BlockSizes> = OnceLock::new();

fn slot_for(elem_bytes: usize) -> &'static OnceLock<BlockSizes> {
    match elem_bytes {
        0..=8 => &BLOCK_8,
        9..=16 => &BLOCK_16,
        _ => &BLOCK_OTHER,
    }
}

/// Installs calibrated blocking constants for scalars of `elem_bytes`
/// bytes. One-shot per process and per width: returns `false` (and keeps
/// the existing value) if a configuration was already installed. Called by
/// `pastix_machine::probe_blocking`.
pub fn configure_blocking(elem_bytes: usize, bs: BlockSizes) -> bool {
    slot_for(elem_bytes).set(bs.sanitized()).is_ok()
}

/// The blocking constants the packed path uses for scalar `T`: the
/// calibrated value if [`configure_blocking`] ran, the per-width default
/// otherwise.
pub fn blocking_for<T: Scalar>() -> BlockSizes {
    let bytes = std::mem::size_of::<T>();
    slot_for(bytes)
        .get()
        .copied()
        .unwrap_or_else(|| BlockSizes::default_for_elem_size(bytes))
}

/// Which implementation the public GEMM entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum KernelMode {
    /// Packed path for large products, axpy reference below the packing
    /// break-even (default).
    #[default]
    Auto = 0,
    /// Always the seed's axpy reference — the "before" side of the bench
    /// harness and the oracle of the divergence checks.
    Reference = 1,
    /// Always the packed path, regardless of size.
    Packed = 2,
}

static KERNEL_MODE: AtomicU8 = AtomicU8::new(KernelMode::Auto as u8);

impl KernelMode {
    /// Installs this mode process-wide and returns a guard that restores
    /// the previous mode when dropped. The scoped form is the supported
    /// replacement for the deprecated bare setters: it composes (nested
    /// scopes unwind in order) and cannot leak a mode into unrelated code
    /// the way the fire-and-forget global store did. Solver entry points
    /// apply `SolverConfig::kernel_mode` through this.
    #[must_use = "the mode reverts when the guard drops"]
    pub fn scoped(self) -> KernelModeGuard {
        let prev = KERNEL_MODE.swap(self as u8, Ordering::Relaxed);
        KernelModeGuard { prev }
    }
}

/// Restores the previous [`KernelMode`] on drop; created by
/// [`KernelMode::scoped`].
#[derive(Debug)]
pub struct KernelModeGuard {
    prev: u8,
}

impl Drop for KernelModeGuard {
    fn drop(&mut self) {
        KERNEL_MODE.store(self.prev, Ordering::Relaxed);
    }
}

/// Current dispatch mode.
pub fn kernel_mode() -> KernelMode {
    match KERNEL_MODE.load(Ordering::Relaxed) {
        1 => KernelMode::Reference,
        2 => KernelMode::Packed,
        _ => KernelMode::Auto,
    }
}

/// Packing + tile bookkeeping only pays off once the product is a few
/// thousand multiply-adds; below this the axpy reference wins.
const PACKED_MIN_MADDS: usize = 16 * 1024;

/// `true` when the dispatcher should take the packed path for an
/// `m × n × k` product under the current [`KernelMode`].
#[inline]
pub(crate) fn use_packed(m: usize, n: usize, k: usize) -> bool {
    match kernel_mode() {
        KernelMode::Reference => false,
        KernelMode::Packed => true,
        KernelMode::Auto => m * n * k >= PACKED_MIN_MADDS,
    }
}

/// How `B` is read while packing: `Nt` takes `B` as `n × k` (the `A·Bᵀ`
/// kernels), `Nn` as `k × n` (the `A·B` kernel).
#[derive(Clone, Copy)]
enum BLayout {
    Nt,
    Nn,
}

/// Packs the `mcb × kcb` block of `A` starting at `(ic, pc)` into
/// `MR`-tall row slabs: slab `ir` holds columns `kk` back-to-back, each as
/// `MR` consecutive row entries, zero-padded past `mcb`.
fn pack_a<T: Scalar>(
    pa: &mut Vec<T>,
    a: &[T],
    lda: usize,
    ic: usize,
    pc: usize,
    mcb: usize,
    kcb: usize,
) {
    let slabs = mcb.div_ceil(MR);
    pa.clear();
    pa.resize(slabs * kcb * MR, T::zero());
    for ir in 0..slabs {
        let row0 = ic + ir * MR;
        let rows = MR.min(mcb - ir * MR);
        let dst_base = ir * kcb * MR;
        for kk in 0..kcb {
            let src = &a[row0 + (pc + kk) * lda..row0 + (pc + kk) * lda + rows];
            let dst = &mut pa[dst_base + kk * MR..dst_base + kk * MR + rows];
            dst.copy_from_slice(src);
            // rows..MR stay zero from the resize.
        }
    }
}

/// Packs the `kcb × ncb` block of `Bᵀ` (resp. `B`) starting at
/// `(pc, jc)` into `NR`-wide column slabs, zero-padded past `ncb`.
fn pack_b<T: Scalar>(
    pb: &mut Vec<T>,
    b: &[T],
    ldb: usize,
    layout: BLayout,
    jc: usize,
    pc: usize,
    ncb: usize,
    kcb: usize,
) {
    let slabs = ncb.div_ceil(NR);
    pb.clear();
    pb.resize(slabs * kcb * NR, T::zero());
    for jr in 0..slabs {
        let col0 = jc + jr * NR;
        let cols = NR.min(ncb - jr * NR);
        let dst_base = jr * kcb * NR;
        match layout {
            BLayout::Nt => {
                // B is n × k: element (column j of the product, depth kk)
                // lives at b[j + kk*ldb].
                for kk in 0..kcb {
                    let src = &b[col0 + (pc + kk) * ldb..col0 + (pc + kk) * ldb + cols];
                    pb[dst_base + kk * NR..dst_base + kk * NR + cols].copy_from_slice(src);
                }
            }
            BLayout::Nn => {
                // B is k × n: element (j, kk) lives at b[kk + j*ldb].
                for jj in 0..cols {
                    let src = &b[pc + (col0 + jj) * ldb..pc + (col0 + jj) * ldb + kcb];
                    for (kk, &v) in src.iter().enumerate() {
                        pb[dst_base + kk * NR + jj] = v;
                    }
                }
            }
        }
    }
}

/// The register microkernel: `acc[j][i] += Σ_kk pa[kk][i] · pb[kk][j]`
/// over one `MR`-slab of the A-pack and one `NR`-slab of the B-pack. The
/// fixed-size accumulator block stays in registers for the whole depth.
#[inline(always)]
fn microkernel<T: Scalar>(kcb: usize, pa: &[T], pb: &[T], acc: &mut [[T; MR]; NR]) {
    let pa = &pa[..kcb * MR];
    let pb = &pb[..kcb * NR];
    for kk in 0..kcb {
        let av: &[T; MR] = pa[kk * MR..kk * MR + MR].try_into().unwrap();
        let bv: &[T; NR] = pb[kk * NR..kk * NR + NR].try_into().unwrap();
        for jj in 0..NR {
            let s = bv[jj];
            let col = &mut acc[jj];
            for ii in 0..MR {
                col[ii] = av[ii].mul_add(s, col[ii]);
            }
        }
    }
}

/// Shared tiled driver of the packed kernels. `C(m×n) += α · A(m×k) · op(B)`
/// with `op` selected by `layout`.
#[allow(clippy::too_many_arguments)]
fn gemm_packed_driver<T: Scalar>(
    bs: BlockSizes,
    layout: BLayout,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    let bs = bs.sanitized();
    let mut pa: Vec<T> = Vec::new();
    let mut pb: Vec<T> = Vec::new();
    let mut jc = 0;
    while jc < n {
        let ncb = bs.nc.min(n - jc);
        let mut pc = 0;
        while pc < k {
            let kcb = bs.kc.min(k - pc);
            pack_b(&mut pb, b, ldb, layout, jc, pc, ncb, kcb);
            let mut ic = 0;
            while ic < m {
                let mcb = bs.mc.min(m - ic);
                pack_a(&mut pa, a, lda, ic, pc, mcb, kcb);
                // Macro kernel over the packed tile.
                let jslabs = ncb.div_ceil(NR);
                let islabs = mcb.div_ceil(MR);
                for jr in 0..jslabs {
                    let nr_cur = NR.min(ncb - jr * NR);
                    let pb_slab = &pb[jr * kcb * NR..(jr + 1) * kcb * NR];
                    for ir in 0..islabs {
                        let mr_cur = MR.min(mcb - ir * MR);
                        let pa_slab = &pa[ir * kcb * MR..(ir + 1) * kcb * MR];
                        let mut acc = [[T::zero(); MR]; NR];
                        microkernel(kcb, pa_slab, pb_slab, &mut acc);
                        // Write back the valid corner only: padding rows of
                        // C and columns past n are never touched.
                        let row0 = ic + ir * MR;
                        let col0 = jc + jr * NR;
                        for jj in 0..nr_cur {
                            let cj = &mut c[row0 + (col0 + jj) * ldc
                                ..row0 + (col0 + jj) * ldc + mr_cur];
                            let accj = &acc[jj];
                            for (ii, cv) in cj.iter_mut().enumerate() {
                                *cv += alpha * accj[ii];
                            }
                        }
                    }
                }
                ic += mcb;
            }
            pc += kcb;
        }
        jc += ncb;
    }
}

/// Packed `C ← C + α · A · Bᵀ` with explicit blocking constants (the probe
/// times candidate constants through this entry point).
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_acc_packed_with<T: Scalar>(
    bs: BlockSizes,
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(lda >= m && ldc >= m, "leading dimensions too small");
    assert!(ldb >= n, "B leading dimension too small");
    assert!(a.len() >= lda * (k - 1) + m, "A buffer too small");
    assert!(b.len() >= ldb * (k - 1) + n, "B buffer too small");
    assert!(c.len() >= ldc * (n - 1) + m, "C buffer too small");
    gemm_packed_driver(bs, BLayout::Nt, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

/// Packed `C ← C + α · A · Bᵀ` under the per-scalar blocking constants.
/// Same contract as [`crate::gemm::gemm_nt_acc`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_acc_packed<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    gemm_nt_acc_packed_with(blocking_for::<T>(), m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

/// Packed `C ← C + α · A · B` under the per-scalar blocking constants.
/// Same contract as [`crate::gemm::gemm_nn_acc`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_acc_packed<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(lda >= m && ldc >= m, "leading dimensions too small");
    assert!(ldb >= k, "B leading dimension too small");
    assert!(a.len() >= lda * (k - 1) + m, "A buffer too small");
    assert!(b.len() >= ldb * (n - 1) + k, "B buffer too small");
    assert!(c.len() >= ldc * (n - 1) + m, "C buffer too small");
    gemm_packed_driver(
        blocking_for::<T>(),
        BLayout::Nn,
        m,
        n,
        k,
        alpha,
        a,
        lda,
        b,
        ldb,
        c,
        ldc,
    );
}

/// Packed lower-triangle-only `C ← C + α · A · Bᵀ` for square updates on a
/// diagonal block: tiles the columns, runs the small triangular corner of
/// each tile with the scalar loop (so the strictly upper triangle is never
/// touched) and the rectangle below it through the packed kernel. Same
/// contract as [`crate::gemm::gemm_nt_acc_lower`].
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_acc_lower_packed<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if n == 0 || k == 0 {
        return;
    }
    assert!(lda >= n && ldc >= n, "leading dimensions too small");
    assert!(ldb >= n, "B leading dimension too small");
    // Tile width: wide enough that the rectangles below the diagonal
    // dominate, small enough that the scalar triangles stay cheap.
    const TB: usize = 32;
    let mut j0 = 0;
    while j0 < n {
        let w = TB.min(n - j0);
        // Triangular corner rows/cols j0..j0+w: scalar lower loop.
        for j in j0..j0 + w {
            let rows = j0 + w - j;
            let cj = &mut c[j * ldc + j..j * ldc + j + rows];
            for kk in 0..k {
                let s = alpha * b[j + kk * ldb];
                let ak = &a[kk * lda + j..kk * lda + j + rows];
                for (cv, &av) in cj.iter_mut().zip(ak) {
                    *cv += av * s;
                }
            }
        }
        // Rectangle rows j0+w..n of columns j0..j0+w: packed kernel.
        let mrest = n - j0 - w;
        if mrest > 0 {
            gemm_nt_acc_packed(
                mrest,
                w,
                k,
                alpha,
                &a[j0 + w..],
                lda,
                &b[j0..],
                ldb,
                &mut c[(j0 + w) + j0 * ldc..],
                ldc,
            );
        }
        j0 += w;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_rounds_to_register_block() {
        let bs = BlockSizes {
            mc: 1,
            kc: 0,
            nc: 5,
        }
        .sanitized();
        assert_eq!(bs.mc % MR, 0);
        assert_eq!(bs.nc % NR, 0);
        assert!(bs.kc >= 1);
    }

    // The mode tests mutate one process-global; serialize them.
    static MODE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn kernel_mode_scoped_restores() {
        let _serial = MODE_LOCK.lock().unwrap();
        let before = kernel_mode();
        {
            let _g = KernelMode::Packed.scoped();
            assert_eq!(kernel_mode(), KernelMode::Packed);
            {
                let _g2 = KernelMode::Reference.scoped();
                assert_eq!(kernel_mode(), KernelMode::Reference);
            }
            assert_eq!(kernel_mode(), KernelMode::Packed);
        }
        assert_eq!(kernel_mode(), before);
    }

    #[test]
    fn defaults_are_per_width() {
        let d8 = BlockSizes::default_for_elem_size(8);
        let d16 = BlockSizes::default_for_elem_size(16);
        assert!(d16.mc * 16 <= d8.mc * 16, "wider scalars get smaller tiles");
        assert!(d16.kc < d8.kc);
    }

    #[test]
    fn packed_matches_reference_odd_shapes() {
        // Shapes straddling every register/tile boundary, tiny blocking so
        // all loops iterate more than once.
        let bs = BlockSizes {
            mc: 16,
            kc: 8,
            nc: 8,
        };
        for (m, n, k) in [(1, 1, 1), (7, 3, 5), (8, 4, 8), (9, 5, 9), (23, 11, 17), (40, 13, 26)] {
            let a: Vec<f64> = (0..m * k).map(|i| (i % 13) as f64 - 6.0).collect();
            let b: Vec<f64> = (0..n * k).map(|i| (i % 7) as f64 * 0.5 - 1.0).collect();
            let mut c1: Vec<f64> = (0..m * n).map(|i| i as f64 * 0.1).collect();
            let mut c2 = c1.clone();
            gemm_nt_acc_packed_with(bs, m, n, k, -1.5, &a, m, &b, n, &mut c1, m);
            crate::gemm::gemm_nt_acc_ref(m, n, k, -1.5, &a, m, &b, n, &mut c2, m);
            for (x, y) in c1.iter().zip(&c2) {
                assert!((x - y).abs() < 1e-12, "({m},{n},{k}): {x} vs {y}");
            }
        }
    }
}
