//! Dense symmetric factorization kernels.
//!
//! Storage convention (the one used by real PaStiX): a factored diagonal
//! block of order `n` holds `D` on its diagonal and the strictly lower part
//! of the *unit* lower triangular `L` below it; the strictly upper triangle
//! is never read. For the Cholesky baseline the diagonal holds `L(j,j)`
//! itself.
//!
//! Two granularities are provided: the unblocked right-looking kernels used
//! on supernodal diagonal blocks (whose order is bounded by the blocking
//! size after repartitioning), and blocked variants used by the dense
//! benchmarks (the paper's 1024×1024 ESSL comparison) and oversized blocks.

use crate::gemm::{gemm_nt_acc, gemm_nt_acc_lower};
use crate::scalar::Scalar;
use crate::trsm::{scale_cols_by_diag_into, trsm_ldlt_panel, trsm_llt_panel};

/// Error raised by the factorization kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactorError {
    /// A zero (or non-finite) pivot was met at the given local index.
    /// The algorithm performs no pivoting, as in the paper; the caller is
    /// expected to hand in matrices for which this cannot happen (SPD or
    /// complex symmetric with a stable ordering).
    ZeroPivot(usize),
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::ZeroPivot(i) => write!(f, "zero pivot at local index {i}"),
        }
    }
}

impl std::error::Error for FactorError {}

/// Default panel width of the blocked factor kernels: wide enough that the
/// trailing updates run as packed GEMMs, narrow enough that the unblocked
/// diagonal step stays negligible.
pub const NB_FACTOR: usize = 48;

/// In-place `L·D·Lᵀ` factorization of the lower triangle of an `n × n`
/// column-major block (leading dimension `lda`).
///
/// On exit the diagonal holds `D` and the strictly lower triangle holds the
/// unit lower factor `L`. Right-looking, `n³/3 + O(n²)` multiply-adds.
///
/// ```
/// use pastix_kernels::ldlt_factor_inplace;
/// // A = [[4, 2], [2, 5]]  (column-major, lower triangle relevant)
/// let mut a = [4.0, 2.0, 0.0, 5.0];
/// ldlt_factor_inplace(2, &mut a, 2).unwrap();
/// assert_eq!(a[0], 4.0);  // d0
/// assert_eq!(a[1], 0.5);  // L(1,0)
/// assert_eq!(a[3], 4.0);  // d1 = 5 − 0.5²·4
/// ```
pub fn ldlt_factor_inplace<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), FactorError> {
    assert!(lda >= n || n == 0, "leading dimension too small");
    for j in 0..n {
        let d = a[j + j * lda];
        if d == T::zero() || !d.is_finite() {
            return Err(FactorError::ZeroPivot(j));
        }
        let dinv = d.recip();
        // Column j below the diagonal becomes L(:,j).
        for i in (j + 1)..n {
            a[i + j * lda] *= dinv;
        }
        // Trailing symmetric update: A(i,k) -= L(i,j) * d * L(k,j), i >= k > j.
        for k in (j + 1)..n {
            let s = a[k + j * lda] * d;
            if s == T::zero() {
                continue;
            }
            let (lcol, rest) = {
                // Split so we can read column j while writing column k.
                let (left, right) = a.split_at_mut(k * lda);
                (&left[j * lda + k..j * lda + n], &mut right[k..n])
            };
            for (r, &l) in rest.iter_mut().zip(lcol) {
                *r -= l * s;
            }
        }
    }
    Ok(())
}

/// In-place Cholesky `L·Lᵀ` factorization of the lower triangle of an
/// `n × n` column-major block (leading dimension `lda`).
///
/// Requires an SPD (or at least non-singular along the pivot sequence)
/// matrix; intrinsically more BLAS-efficient than [`ldlt_factor_inplace`]
/// because the trailing update needs no diagonal rescaling — the effect the
/// paper points out when comparing ESSL's `LLᵀ` (1.07 s) with `LDLᵀ`
/// (1.27 s) on a 1024×1024 dense matrix.
pub fn llt_factor_inplace<T: Scalar>(n: usize, a: &mut [T], lda: usize) -> Result<(), FactorError> {
    assert!(lda >= n || n == 0, "leading dimension too small");
    for j in 0..n {
        let d = a[j + j * lda];
        if d == T::zero() || !d.is_finite() {
            return Err(FactorError::ZeroPivot(j));
        }
        let l = d.sqrt();
        if l == T::zero() || !l.is_finite() {
            return Err(FactorError::ZeroPivot(j));
        }
        a[j + j * lda] = l;
        let linv = l.recip();
        for i in (j + 1)..n {
            a[i + j * lda] *= linv;
        }
        for k in (j + 1)..n {
            let s = a[k + j * lda];
            if s == T::zero() {
                continue;
            }
            let (lcol, rest) = {
                let (left, right) = a.split_at_mut(k * lda);
                (&left[j * lda + k..j * lda + n], &mut right[k..n])
            };
            for (r, &l) in rest.iter_mut().zip(lcol) {
                *r -= l * s;
            }
        }
    }
    Ok(())
}

/// Blocked right-looking `L·D·Lᵀ`, panel width `nb`.
///
/// Each step factors an `nb`-wide diagonal panel with the unblocked kernel,
/// solves the sub-panel below it, and applies the trailing update through
/// [`gemm_nt_acc`] so that most flops run at GEMM speed. `work` grows as
/// needed and holds the `L·D` panel copy.
pub fn ldlt_factor_blocked<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
    work: &mut Vec<T>,
) -> Result<(), FactorError> {
    assert!(lda >= n || n == 0, "leading dimension too small");
    let nb = nb.max(1);
    let mut p = 0;
    while p < n {
        let b = nb.min(n - p);
        let below = n - p - b;
        // Factor the diagonal sub-block A(p..p+b, p..p+b).
        {
            let sub = &mut a[p + p * lda..];
            ldlt_factor_inplace(b, sub, lda).map_err(|FactorError::ZeroPivot(i)| FactorError::ZeroPivot(p + i))?;
        }
        if below == 0 {
            break;
        }
        // Solve the panel A(p+b..n, p..p+b) ← A · L⁻ᵀ · D⁻¹. The diagonal
        // block shares columns with the panel in memory, so copy it into a
        // compact b×b scratch to keep the borrows disjoint.
        let mut dtmp = vec![T::zero(); b * b];
        crate::dense::copy_panel(b, b, &a[p + p * lda..], lda, &mut dtmp, b);
        {
            let panel = &mut a[(p + b) + p * lda..];
            trsm_ldlt_panel(below, b, &dtmp, b, panel, lda);
        }
        // W = L_panel · D (copy scaled by the diagonal).
        work.clear();
        work.resize(below * b, T::zero());
        {
            let mut d = Vec::with_capacity(b);
            for i in 0..b {
                d.push(a[(p + i) + (p + i) * lda]);
            }
            let panel = &a[(p + b) + p * lda..];
            scale_cols_by_diag_into(below, b, panel, lda, &d, work, below);
        }
        // Trailing update: A(p+b.., p+b..) -= L_panel · Wᵀ (lower part only,
        // done block-column by block-column so the diagonal blocks use the
        // lower-triangle kernel).
        let mut q = 0;
        while q < below {
            let w = nb.min(below - q);
            let col0 = p + b + q;
            // Diagonal target block (order w).
            {
                let (asrc, adst) = split_src_dst(a, (p + b + q) + p * lda, col0 + col0 * lda);
                gemm_nt_acc_lower(w, b, -T::one(), asrc, lda, &work[q..], below, adst, lda);
            }
            // Rectangular part strictly below it.
            let mrest = below - q - w;
            if mrest > 0 {
                let (asrc, adst) = split_src_dst(a, (p + b + q + w) + p * lda, (col0 + w) + col0 * lda);
                gemm_nt_acc(mrest, w, b, -T::one(), asrc, lda, &work[q..], below, adst, lda);
            }
            q += w;
        }
        p += b;
    }
    Ok(())
}

/// Blocked right-looking Cholesky `L·Lᵀ`, panel width `nb`.
pub fn llt_factor_blocked<T: Scalar>(
    n: usize,
    a: &mut [T],
    lda: usize,
    nb: usize,
) -> Result<(), FactorError> {
    assert!(lda >= n || n == 0, "leading dimension too small");
    let nb = nb.max(1);
    let mut p = 0;
    while p < n {
        let b = nb.min(n - p);
        let below = n - p - b;
        {
            let sub = &mut a[p + p * lda..];
            llt_factor_inplace(b, sub, lda).map_err(|FactorError::ZeroPivot(i)| FactorError::ZeroPivot(p + i))?;
        }
        if below == 0 {
            break;
        }
        // As in the LDLᵀ variant: compact copy of the diagonal block keeps
        // the diag read and the panel write on disjoint borrows.
        let mut dtmp = vec![T::zero(); b * b];
        crate::dense::copy_panel(b, b, &a[p + p * lda..], lda, &mut dtmp, b);
        {
            let panel = &mut a[(p + b) + p * lda..];
            trsm_llt_panel(below, b, &dtmp, b, panel, lda);
        }
        // Trailing update: A(p+b.., p+b..) -= L_panel · L_panelᵀ (lower part).
        let mut q = 0;
        while q < below {
            let w = nb.min(below - q);
            let col0 = p + b + q;
            {
                let (asrc, adst) = split_src_dst(a, (p + b + q) + p * lda, col0 + col0 * lda);
                // B rows are the same panel rows q..q+w.
                gemm_nt_acc_lower(w, b, -T::one(), asrc, lda, asrc, lda, adst, lda);
            }
            let mrest = below - q - w;
            if mrest > 0 {
                // A = panel rows q+w.., B = panel rows q..q+w; both live
                // strictly before the destination block in the buffer.
                let dst_off = (col0 + w) + col0 * lda;
                let a_off = (p + b + q + w) + p * lda;
                let b_off = (p + b + q) + p * lda;
                let (left, right) = a.split_at_mut(dst_off);
                gemm_nt_acc(
                    mrest,
                    w,
                    b,
                    -T::one(),
                    &left[a_off..],
                    lda,
                    &left[b_off..],
                    lda,
                    right,
                    lda,
                );
            }
            q += w;
        }
        p += b;
    }
    Ok(())
}

/// Splits a buffer at `dst_off` so the region starting at `src_off`
/// (strictly before `dst_off`) can be read while the destination is written.
#[inline]
fn split_src_dst<T>(a: &mut [T], src_off: usize, dst_off: usize) -> (&[T], &mut [T]) {
    debug_assert!(src_off < dst_off, "source must precede destination");
    let (left, right) = a.split_at_mut(dst_off);
    (&left[src_off..], right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::dense::{deterministic_spd, DenseMat};

    /// Rebuilds `L·D·Lᵀ` from a factored buffer and compares with the
    /// original lower triangle.
    fn check_ldlt(orig: &DenseMat<f64>, fact: &DenseMat<f64>, tol: f64) {
        let n = orig.nrows();
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0;
                for p in 0..=j {
                    let lip = if i == p { 1.0 } else { fact[(i, p)] };
                    let ljp = if j == p { 1.0 } else { fact[(j, p)] };
                    let d = fact[(p, p)];
                    v += lip * d * ljp;
                }
                assert!(
                    (v - orig[(i, j)]).abs() <= tol * orig.fro_norm().max(1.0),
                    "entry ({i},{j}): rebuilt {v} vs {}",
                    orig[(i, j)]
                );
            }
        }
    }

    fn check_llt(orig: &DenseMat<f64>, fact: &DenseMat<f64>, tol: f64) {
        let n = orig.nrows();
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0;
                for p in 0..=j {
                    v += fact[(i, p)] * fact[(j, p)];
                }
                assert!(
                    (v - orig[(i, j)]).abs() <= tol * orig.fro_norm().max(1.0),
                    "entry ({i},{j}): rebuilt {v} vs {}",
                    orig[(i, j)]
                );
            }
        }
    }

    #[test]
    fn ldlt_small_known() {
        // A = [[4, 2], [2, 5]] = L D L^T with L21 = 0.5, D = diag(4, 4).
        let mut a = DenseMat::from_fn(2, 2, |i, j| [[4.0, 2.0], [2.0, 5.0]][i][j]);
        ldlt_factor_inplace(2, a.as_mut_slice(), 2).unwrap();
        assert!((a[(0, 0)] - 4.0).abs() < 1e-15);
        assert!((a[(1, 0)] - 0.5).abs() < 1e-15);
        assert!((a[(1, 1)] - 4.0).abs() < 1e-15);
    }

    #[test]
    fn llt_small_known() {
        let mut a = DenseMat::from_fn(2, 2, |i, j| [[4.0, 2.0], [2.0, 5.0]][i][j]);
        llt_factor_inplace(2, a.as_mut_slice(), 2).unwrap();
        assert!((a[(0, 0)] - 2.0).abs() < 1e-15);
        assert!((a[(1, 0)] - 1.0).abs() < 1e-15);
        assert!((a[(1, 1)] - 2.0).abs() < 1e-15);
    }

    #[test]
    fn ldlt_reconstructs_spd() {
        for n in [1, 2, 3, 5, 17, 40] {
            let orig = deterministic_spd(n, 7 + n as u64);
            let mut f = orig.clone();
            ldlt_factor_inplace(n, f.as_mut_slice(), n).unwrap();
            check_ldlt(&orig, &f, 1e-12);
        }
    }

    #[test]
    fn llt_reconstructs_spd() {
        for n in [1, 3, 8, 23, 40] {
            let orig = deterministic_spd(n, 100 + n as u64);
            let mut f = orig.clone();
            llt_factor_inplace(n, f.as_mut_slice(), n).unwrap();
            check_llt(&orig, &f, 1e-12);
        }
    }

    #[test]
    fn blocked_matches_unblocked_ldlt() {
        for n in [5, 16, 33, 64, 100] {
            let orig = deterministic_spd(n, n as u64);
            let mut u = orig.clone();
            ldlt_factor_inplace(n, u.as_mut_slice(), n).unwrap();
            for nb in [1, 4, 8, 32, 128] {
                let mut b = orig.clone();
                let mut work = Vec::new();
                ldlt_factor_blocked(n, b.as_mut_slice(), n, nb, &mut work).unwrap();
                // Compare lower triangles only.
                for j in 0..n {
                    for i in j..n {
                        assert!(
                            (u[(i, j)] - b[(i, j)]).abs() < 1e-9,
                            "n={n} nb={nb} ({i},{j}): {} vs {}",
                            u[(i, j)],
                            b[(i, j)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn blocked_matches_unblocked_llt() {
        for n in [6, 16, 41, 64] {
            let orig = deterministic_spd(n, 3 * n as u64 + 1);
            let mut u = orig.clone();
            llt_factor_inplace(n, u.as_mut_slice(), n).unwrap();
            for nb in [2, 8, 16, 100] {
                let mut b = orig.clone();
                llt_factor_blocked(n, b.as_mut_slice(), n, nb).unwrap();
                for j in 0..n {
                    for i in j..n {
                        assert!(
                            (u[(i, j)] - b[(i, j)]).abs() < 1e-9,
                            "n={n} nb={nb} ({i},{j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn zero_pivot_detected() {
        let mut a = DenseMat::<f64>::zeros(3, 3);
        a[(0, 0)] = 1.0; // second pivot is exactly zero
        let err = ldlt_factor_inplace(3, a.as_mut_slice(), 3).unwrap_err();
        assert_eq!(err, FactorError::ZeroPivot(1));
    }

    #[test]
    fn complex_symmetric_ldlt() {
        // Complex symmetric (NOT Hermitian) 2x2; LDLt must reproduce it.
        let z = |re: f64, im: f64| Complex64::new(re, im);
        let a00 = z(3.0, 1.0);
        let a10 = z(1.0, -2.0);
        let a11 = z(4.0, 0.5);
        let mut a = DenseMat::from_fn(2, 2, |i, j| match (i, j) {
            (0, 0) => a00,
            (1, 0) => a10,
            (1, 1) => a11,
            _ => Complex64::ZERO,
        });
        ldlt_factor_inplace(2, a.as_mut_slice(), 2).unwrap();
        let d0 = a[(0, 0)];
        let l10 = a[(1, 0)];
        let d1 = a[(1, 1)];
        // Rebuild.
        assert!((d0 - a00).abs() < 1e-14);
        assert!((l10 * d0 - a10).abs() < 1e-14);
        assert!((l10 * d0 * l10 + d1 - a11).abs() < 1e-14);
    }

    #[test]
    fn leading_dimension_respected() {
        let n = 4;
        let lda = 7;
        let orig = deterministic_spd(n, 5);
        let mut buf = vec![f64::NAN; lda * n];
        for j in 0..n {
            for i in 0..n {
                buf[i + j * lda] = orig[(i, j)];
            }
        }
        ldlt_factor_inplace(n, &mut buf, lda).unwrap();
        let mut compact = orig.clone();
        ldlt_factor_inplace(n, compact.as_mut_slice(), n).unwrap();
        for j in 0..n {
            for i in j..n {
                assert!((buf[i + j * lda] - compact[(i, j)]).abs() < 1e-12);
            }
        }
        // Padding rows untouched.
        assert!(buf[n].is_nan());
    }
}
