//! GEMM-style update kernels.
//!
//! The supernodal fan-in solver spends almost all of its flops in
//! `C ← C + α·A·Bᵀ` (BMOD / COMP1D contribution computation, α = −1 when
//! applied directly, +1 when accumulated into an aggregated update block)
//! and a little in `C ← C + α·A·B` (triangular solve sweeps). Both kernels
//! operate on column-major panels with explicit leading dimensions.
//!
//! Two implementations live behind each public entry point:
//!
//! * a register-blocked **axpy reference** (the seed kernel): each column of
//!   `C` is written once per four `k` steps; simple, exact, and fastest for
//!   small tiles;
//! * the **cache-blocked packed path** of [`crate::pack`]: `MC×KC×NC`
//!   tiling with packed operand panels and an `MR×NR` register microkernel,
//!   which the dispatcher selects for products large enough to amortize the
//!   packing (see [`crate::pack::KernelMode`] to force either side).
//!
//! No `unsafe` is needed anywhere.

use crate::pack;
use crate::scalar::Scalar;

/// `C ← C + α · A · Bᵀ` where `A` is `m×k` (lda ≥ m), `B` is `n×k`
/// (ldb ≥ n) and `C` is `m×n` (ldc ≥ m), all column-major.
///
/// This is the workhorse of the numerical factorization: the contribution of
/// column block `k` to block `(i,j)` is `L_ik · F_jᵀ` (paper, Fig. 1 lines
/// 7 and 15).
pub fn gemm_nt_acc<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if pack::use_packed(m, n, k) {
        pack::gemm_nt_acc_packed(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_nt_acc_ref(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// The seed axpy formulation of [`gemm_nt_acc`]: the reference
/// implementation every packed kernel is property-tested against, and the
/// "before" side of `bench_hotpath`.
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_acc_ref<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(lda >= m && ldc >= m, "leading dimensions too small");
    assert!(ldb >= n, "B leading dimension too small");
    assert!(a.len() >= lda * (k - 1) + m, "A buffer too small");
    assert!(b.len() >= ldb * (k - 1) + n, "B buffer too small");
    assert!(c.len() >= ldc * (n - 1) + m, "C buffer too small");

    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        let mut kk = 0;
        // Four-way unrolled axpy accumulation into column j of C.
        while kk + 4 <= k {
            let s0 = alpha * b[j + kk * ldb];
            let s1 = alpha * b[j + (kk + 1) * ldb];
            let s2 = alpha * b[j + (kk + 2) * ldb];
            let s3 = alpha * b[j + (kk + 3) * ldb];
            let a0 = &a[kk * lda..kk * lda + m];
            let a1 = &a[(kk + 1) * lda..(kk + 1) * lda + m];
            let a2 = &a[(kk + 2) * lda..(kk + 2) * lda + m];
            let a3 = &a[(kk + 3) * lda..(kk + 3) * lda + m];
            for (i, cv) in cj.iter_mut().enumerate() {
                *cv += a0[i] * s0 + a1[i] * s1 + a2[i] * s2 + a3[i] * s3;
            }
            kk += 4;
        }
        while kk < k {
            let s = alpha * b[j + kk * ldb];
            let ak = &a[kk * lda..kk * lda + m];
            for (cv, &av) in cj.iter_mut().zip(ak) {
                *cv += av * s;
            }
            kk += 1;
        }
    }
}

/// `C ← C + α · A · B` where `A` is `m×k` (lda ≥ m), `B` is `k×n`
/// (ldb ≥ k) and `C` is `m×n` (ldc ≥ m), all column-major.
pub fn gemm_nn_acc<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if pack::use_packed(m, n, k) {
        pack::gemm_nn_acc_packed(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_nn_acc_ref(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// The seed axpy formulation of [`gemm_nn_acc`] (reference path).
#[allow(clippy::too_many_arguments)]
pub fn gemm_nn_acc_ref<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(lda >= m && ldc >= m, "leading dimensions too small");
    assert!(ldb >= k, "B leading dimension too small");
    assert!(a.len() >= lda * (k - 1) + m, "A buffer too small");
    assert!(b.len() >= ldb * (n - 1) + k, "B buffer too small");
    assert!(c.len() >= ldc * (n - 1) + m, "C buffer too small");

    for j in 0..n {
        let cj = &mut c[j * ldc..j * ldc + m];
        let bj = &b[j * ldb..j * ldb + k];
        let mut kk = 0;
        while kk + 4 <= k {
            let s0 = alpha * bj[kk];
            let s1 = alpha * bj[kk + 1];
            let s2 = alpha * bj[kk + 2];
            let s3 = alpha * bj[kk + 3];
            let a0 = &a[kk * lda..kk * lda + m];
            let a1 = &a[(kk + 1) * lda..(kk + 1) * lda + m];
            let a2 = &a[(kk + 2) * lda..(kk + 2) * lda + m];
            let a3 = &a[(kk + 3) * lda..(kk + 3) * lda + m];
            for (i, cv) in cj.iter_mut().enumerate() {
                *cv += a0[i] * s0 + a1[i] * s1 + a2[i] * s2 + a3[i] * s3;
            }
            kk += 4;
        }
        while kk < k {
            let s = alpha * bj[kk];
            let ak = &a[kk * lda..kk * lda + m];
            for (cv, &av) in cj.iter_mut().zip(ak) {
                *cv += av * s;
            }
            kk += 1;
        }
    }
}

/// Lower-triangle-only variant of [`gemm_nt_acc`] for square updates landing
/// on a diagonal block: only entries with `row ≥ col` of the `n×n` result
/// are touched (the strictly upper triangle of a diagonal block is never
/// stored by the solver).
pub fn gemm_nt_acc_lower<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if n == 0 || k == 0 {
        return;
    }
    // Roughly half the full product's multiply-adds land in the lower
    // triangle.
    if pack::use_packed(n, n.div_ceil(2), k) {
        pack::gemm_nt_acc_lower_packed(n, k, alpha, a, lda, b, ldb, c, ldc);
    } else {
        gemm_nt_acc_lower_ref(n, k, alpha, a, lda, b, ldb, c, ldc);
    }
}

/// The seed axpy formulation of [`gemm_nt_acc_lower`] (reference path).
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_acc_lower_ref<T: Scalar>(
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if n == 0 || k == 0 {
        return;
    }
    assert!(lda >= n && ldc >= n, "leading dimensions too small");
    assert!(ldb >= n, "B leading dimension too small");
    for j in 0..n {
        let m = n - j; // rows j..n of column j
        let cj = &mut c[j * ldc + j..j * ldc + n];
        for kk in 0..k {
            let s = alpha * b[j + kk * ldb];
            let ak = &a[kk * lda + j..kk * lda + j + m];
            for (cv, &av) in cj.iter_mut().zip(ak) {
                *cv += av * s;
            }
        }
    }
}

/// `C ← C + α · Aᵀ · B` where `A` is `k×m` (lda ≥ k), `B` is `k×n`
/// (ldb ≥ k) and `C` is `m×n` (ldc ≥ m), all column-major.
///
/// The backward triangular sweep of a multi-RHS panel solve is exactly this
/// shape: the partial `L_bᵀ · X_s` reduces the shared `k` dimension down
/// contiguous columns of both operands, so the inner loop is a pair of
/// unit-stride dot products with no transposed pack needed.
pub fn gemm_tn_acc<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    alpha: T,
    a: &[T],
    lda: usize,
    b: &[T],
    ldb: usize,
    c: &mut [T],
    ldc: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    assert!(lda >= k && ldb >= k, "operand leading dimensions too small");
    assert!(ldc >= m, "C leading dimension too small");
    assert!(a.len() >= lda * (m - 1) + k, "A buffer too small");
    assert!(b.len() >= ldb * (n - 1) + k, "B buffer too small");
    assert!(c.len() >= ldc * (n - 1) + m, "C buffer too small");
    for j in 0..n {
        let bj = &b[j * ldb..j * ldb + k];
        let cj = &mut c[j * ldc..j * ldc + m];
        for (i, cv) in cj.iter_mut().enumerate() {
            let ai = &a[i * lda..i * lda + k];
            let mut acc = T::zero();
            for (&av, &bv) in ai.iter().zip(bj) {
                acc += av * bv;
            }
            *cv += alpha * acc;
        }
    }
}

/// Flop count of a `gemm_nt`/`gemm_nn` call (`2·m·n·k`), used by the cost
/// model and the Gflop/s reporting.
#[inline]
pub fn gemm_flops(m: usize, n: usize, k: usize) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseMat;

    fn naive_nt(a: &DenseMat<f64>, b: &DenseMat<f64>, alpha: f64) -> DenseMat<f64> {
        let bt = b.transposed();
        let mut c = a.matmul(&bt);
        for v in c.as_mut_slice() {
            *v *= alpha;
        }
        c
    }

    #[test]
    fn gemm_nt_matches_naive() {
        for (m, n, k) in [(1, 1, 1), (3, 2, 5), (8, 8, 8), (7, 5, 9), (16, 3, 1)] {
            let a = DenseMat::from_fn(m, k, |i, j| (i * 31 + j * 7 + 1) as f64 * 0.25);
            let b = DenseMat::from_fn(n, k, |i, j| (i as f64) - 0.5 * (j as f64));
            let mut c = DenseMat::from_fn(m, n, |i, j| (i + j) as f64);
            let expect = {
                let mut e = c.clone();
                let upd = naive_nt(&a, &b, -1.0);
                for j in 0..n {
                    for i in 0..m {
                        e[(i, j)] += upd[(i, j)];
                    }
                }
                e
            };
            gemm_nt_acc(m, n, k, -1.0, a.as_slice(), m, b.as_slice(), n, c.as_mut_slice(), m);
            assert!(c.max_diff(&expect) < 1e-12, "mismatch at ({m},{n},{k})");
        }
    }

    #[test]
    fn gemm_nn_matches_naive() {
        for (m, n, k) in [(4, 4, 4), (5, 3, 7), (2, 9, 6)] {
            let a = DenseMat::from_fn(m, k, |i, j| ((i + 1) * (j + 2)) as f64);
            let b = DenseMat::from_fn(k, n, |i, j| (i as f64 * 0.5) - j as f64);
            let mut c = DenseMat::zeros(m, n);
            gemm_nn_acc(m, n, k, 2.0, a.as_slice(), m, b.as_slice(), k, c.as_mut_slice(), m);
            let mut expect = a.matmul(&b);
            for v in expect.as_mut_slice() {
                *v *= 2.0;
            }
            assert!(c.max_diff(&expect) < 1e-12);
        }
    }

    #[test]
    fn gemm_tn_matches_naive() {
        for (m, n, k) in [(1, 1, 1), (3, 2, 5), (6, 4, 8), (5, 7, 3)] {
            let a = DenseMat::from_fn(k, m, |i, j| (i * 13 + j * 5 + 1) as f64 * 0.125);
            let b = DenseMat::from_fn(k, n, |i, j| (i as f64) * 0.5 - (j as f64));
            let mut c = DenseMat::from_fn(m, n, |i, j| (i * n + j) as f64);
            let expect = {
                let mut e = c.clone();
                for j in 0..n {
                    for i in 0..m {
                        let mut acc = 0.0;
                        for kk in 0..k {
                            acc += a[(kk, i)] * b[(kk, j)];
                        }
                        e[(i, j)] -= 2.0 * acc;
                    }
                }
                e
            };
            gemm_tn_acc(m, n, k, -2.0, a.as_slice(), k, b.as_slice(), k, c.as_mut_slice(), m);
            assert!(c.max_diff(&expect) < 1e-12, "mismatch at ({m},{n},{k})");
        }
    }

    #[test]
    fn gemm_with_leading_dimension_gap() {
        // Place a 2x2 problem inside larger buffers to exercise lda > m.
        let (m, n, k) = (2, 2, 3);
        let lda = 5;
        let ldb = 4;
        let ldc = 6;
        let mut a = vec![0.0; lda * k];
        let mut b = vec![0.0; ldb * k];
        let mut c = vec![0.0; ldc * n];
        for kk in 0..k {
            for i in 0..m {
                a[i + kk * lda] = (i + kk) as f64;
            }
            for j in 0..n {
                b[j + kk * ldb] = (j * 2 + kk) as f64;
            }
        }
        gemm_nt_acc(m, n, k, 1.0, &a, lda, &b, ldb, &mut c, ldc);
        // c(i,j) = sum_kk (i+kk)(2j+kk)
        for j in 0..n {
            for i in 0..m {
                let want: f64 = (0..k).map(|kk| ((i + kk) * (2 * j + kk)) as f64).sum();
                assert_eq!(c[i + j * ldc], want);
            }
        }
        // Padding untouched.
        assert_eq!(c[2], 0.0);
    }

    #[test]
    fn lower_variant_matches_full_on_lower_triangle() {
        let n = 6;
        let k = 5;
        let a = DenseMat::from_fn(n, k, |i, j| (i * 3 + j) as f64 * 0.1);
        let b = DenseMat::from_fn(n, k, |i, j| 1.0 + (i ^ j) as f64);
        let mut full = DenseMat::zeros(n, n);
        let mut low = DenseMat::zeros(n, n);
        gemm_nt_acc(n, n, k, -1.0, a.as_slice(), n, b.as_slice(), n, full.as_mut_slice(), n);
        gemm_nt_acc_lower(n, k, -1.0, a.as_slice(), n, b.as_slice(), n, low.as_mut_slice(), n);
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    assert!((low[(i, j)] - full[(i, j)]).abs() < 1e-13);
                } else {
                    assert_eq!(low[(i, j)], 0.0, "upper triangle must stay untouched");
                }
            }
        }
    }

    #[test]
    fn zero_sized_noop() {
        let mut c = [1.0f64; 4];
        gemm_nt_acc(0, 2, 2, 1.0, &[], 1, &[1.0, 1.0, 1.0, 1.0], 2, &mut c, 1);
        gemm_nn_acc(2, 0, 2, 1.0, &[1.0; 4], 2, &[1.0; 4], 2, &mut c, 2);
        gemm_nt_acc(2, 2, 0, 1.0, &[], 2, &[], 2, &mut c, 2);
        assert_eq!(c, [1.0; 4]);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(gemm_flops(2, 3, 4), 48.0);
    }
}
