//! Property-based tests of the dense kernels: random shapes and data
//! against naive reference implementations, and algebraic invariants of
//! the factorizations.

use pastix_kernels::dense::DenseMat;
use pastix_kernels::pack::{
    gemm_nn_acc_packed, gemm_nt_acc_lower_packed, gemm_nt_acc_packed_with, BlockSizes,
};
use pastix_kernels::{
    gemm_nn_acc, gemm_nt_acc, gemm_nt_acc_lower, ldlt_factor_inplace, llt_factor_inplace,
    solve_unit_lower, solve_unit_lower_trans, trsm_ldlt_panel,
};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

fn mat(m: usize, n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-3.0f64..3.0, m * n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn gemm_nt_matches_reference((m, n, k) in dims(), seed in 0u64..1_000_000) {
        let mut rng = seed;
        let mut next = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let a = DenseMat::from_fn(m, k, |_, _| next());
        let b = DenseMat::from_fn(n, k, |_, _| next());
        let mut c = DenseMat::from_fn(m, n, |_, _| next());
        let expect = {
            let mut e = c.clone();
            let bt = b.transposed();
            let upd = a.matmul(&bt);
            for j in 0..n {
                for i in 0..m {
                    e[(i, j)] -= upd[(i, j)];
                }
            }
            e
        };
        gemm_nt_acc(m, n, k, -1.0, a.as_slice(), m, b.as_slice(), n, c.as_mut_slice(), m);
        prop_assert!(c.max_diff(&expect) < 1e-11);
    }

    #[test]
    fn gemm_nn_matches_reference((m, n, k) in dims(), av in mat(12, 12), bv in mat(12, 12)) {
        let a = DenseMat::from_fn(m, k, |i, j| av[i + j * m]);
        let b = DenseMat::from_fn(k, n, |i, j| bv[i + j * k]);
        let mut c = DenseMat::zeros(m, n);
        gemm_nn_acc(m, n, k, 1.0, a.as_slice(), m, b.as_slice(), k, c.as_mut_slice(), m);
        let expect = a.matmul(&b);
        prop_assert!(c.max_diff(&expect) < 1e-11);
    }

    #[test]
    fn lower_gemm_is_lower_triangle_of_full((n, k) in (1usize..10, 1usize..10), av in mat(10, 10), bv in mat(10, 10)) {
        let a = DenseMat::from_fn(n, k, |i, j| av[i + j * n]);
        let b = DenseMat::from_fn(n, k, |i, j| bv[i + j * n]);
        let mut full = DenseMat::zeros(n, n);
        let mut low = DenseMat::zeros(n, n);
        gemm_nt_acc(n, n, k, 1.0, a.as_slice(), n, b.as_slice(), n, full.as_mut_slice(), n);
        gemm_nt_acc_lower(n, k, 1.0, a.as_slice(), n, b.as_slice(), n, low.as_mut_slice(), n);
        for j in 0..n {
            for i in 0..n {
                if i >= j {
                    prop_assert!((low[(i, j)] - full[(i, j)]).abs() < 1e-12);
                } else {
                    prop_assert_eq!(low[(i, j)], 0.0);
                }
            }
        }
    }

    #[test]
    fn ldlt_reconstructs_random_spd(n in 1usize..16, seed in 0u64..1_000_000) {
        // SPD via B·Bᵀ + n·I from the seed.
        let mut rng = seed.max(1);
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = DenseMat::from_fn(n, n, |_, _| next());
        let bt = b.transposed();
        let mut a = b.matmul(&bt);
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let orig = a.clone();
        prop_assert!(ldlt_factor_inplace(n, a.as_mut_slice(), n).is_ok());
        // Rebuild L·D·Lᵀ and compare.
        for i in 0..n {
            for j in 0..=i {
                let mut v = 0.0;
                for p in 0..=j {
                    let lip = if i == p { 1.0 } else { a[(i, p)] };
                    let ljp = if j == p { 1.0 } else { a[(j, p)] };
                    v += lip * a[(p, p)] * ljp;
                }
                prop_assert!((v - orig[(i, j)]).abs() < 1e-9 * orig.fro_norm().max(1.0));
            }
        }
    }

    #[test]
    fn llt_and_ldlt_relate(n in 1usize..14, seed in 0u64..1_000_000) {
        // For SPD A: L_chol(i,j) = L_ldlt(i,j)·√d_j.
        let mut rng = seed.max(1);
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = DenseMat::from_fn(n, n, |_, _| next());
        let bt = b.transposed();
        let mut a = b.matmul(&bt);
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let mut chol = a.clone();
        llt_factor_inplace(n, chol.as_mut_slice(), n).unwrap();
        let mut ldlt = a.clone();
        ldlt_factor_inplace(n, ldlt.as_mut_slice(), n).unwrap();
        for j in 0..n {
            let sq = ldlt[(j, j)].sqrt();
            prop_assert!((chol[(j, j)] - sq).abs() < 1e-9);
            for i in (j + 1)..n {
                prop_assert!((chol[(i, j)] - ldlt[(i, j)] * sq).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn panel_solve_then_multiply_is_identity(m in 1usize..10, n in 1usize..10, seed in 0u64..100_000) {
        let mut rng = seed.max(1);
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = DenseMat::from_fn(n, n, |_, _| next());
        let bt = b.transposed();
        let mut diag = b.matmul(&bt);
        for i in 0..n {
            diag[(i, i)] += n as f64 + 1.0;
        }
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let orig = DenseMat::from_fn(m, n, |_, _| next());
        let mut panel = orig.clone();
        trsm_ldlt_panel(m, n, diag.as_slice(), n, panel.as_mut_slice(), m);
        // Rebuild A = X·D·Lᵀ.
        for j in 0..n {
            for i in 0..m {
                let mut v = 0.0;
                for p in 0..=j {
                    let l = if p == j { 1.0 } else { diag[(j, p)] };
                    v += panel[(i, p)] * diag[(p, p)] * l;
                }
                prop_assert!((v - orig[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn forward_backward_solves_invert(n in 1usize..12, nrhs in 1usize..4, seed in 0u64..100_000) {
        let mut rng = seed.max(1);
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let b = DenseMat::from_fn(n, n, |_, _| next());
        let bt = b.transposed();
        let mut diag = b.matmul(&bt);
        for i in 0..n {
            diag[(i, i)] += n as f64 + 1.0;
        }
        ldlt_factor_inplace(n, diag.as_mut_slice(), n).unwrap();
        let x0 = DenseMat::from_fn(n, nrhs, |_, _| next());
        // y = L x0, then solve back.
        let mut y = DenseMat::zeros(n, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                let mut v = x0[(i, r)];
                for p in 0..i {
                    v += diag[(i, p)] * x0[(p, r)];
                }
                y[(i, r)] = v;
            }
        }
        solve_unit_lower(n, diag.as_slice(), n, y.as_mut_slice(), nrhs, n);
        prop_assert!(y.max_diff(&x0) < 1e-9);
        // z = Lᵀ x0, then solve back.
        let mut z = DenseMat::zeros(n, nrhs);
        for r in 0..nrhs {
            for i in 0..n {
                let mut v = x0[(i, r)];
                for p in (i + 1)..n {
                    v += diag[(p, i)] * x0[(p, r)];
                }
                z[(i, r)] = v;
            }
        }
        solve_unit_lower_trans(n, diag.as_slice(), n, z.as_mut_slice(), nrhs, n);
        prop_assert!(z.max_diff(&x0) < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Packed-kernel properties: every packed entry point against a naive
// triple loop over random shapes *and* random (non-tight) leading
// dimensions, including degenerate (zero) extents and shapes that are not
// multiples of any register or cache tile. The packed path must also never
// touch C's padding rows (the gap between `m` and `ldc` in each column) —
// the zero-copy guarantee that lets the solver hand it raw panel regions.
// ---------------------------------------------------------------------

/// Deterministic values from a seed; strided column-major fill with a
/// sentinel in the padding rows so writes outside the valid `m × n` box
/// are detectable.
fn fill_strided(rows: usize, cols: usize, ld: usize, seed: u64) -> Vec<f64> {
    let mut rng = seed.max(1);
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        (rng >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    let len = if cols == 0 { 0 } else { ld * (cols - 1) + rows };
    let mut v = vec![f64::MAX; len];
    for j in 0..cols {
        for i in 0..rows {
            v[i + j * ld] = next();
        }
    }
    v
}

/// Asserts the padding rows of a strided buffer still hold the sentinel.
fn padding_untouched(v: &[f64], rows: usize, cols: usize, ld: usize) -> bool {
    (0..cols.saturating_sub(1))
        .all(|j| (rows..ld).all(|i| v[i + j * ld] == f64::MAX))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn packed_nt_random_shapes_and_strides(
        (m, n, k) in (0usize..40, 0usize..40, 0usize..40),
        (pa, pb, pc) in (0usize..5, 0usize..5, 0usize..5),
        // Tiny randomized blocking so a 40-element extent spans several
        // cache tiles and register slabs (sanitization rounds it legal).
        (bmc, bkc, bnc) in (1usize..25, 1usize..10, 1usize..13),
        alpha in -2.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        let bs = BlockSizes { mc: bmc, kc: bkc, nc: bnc };
        let (lda, ldb, ldc) = (m + pa, n + pb, m + pc);
        let a = fill_strided(m, k, lda, seed);
        let b = fill_strided(n, k, ldb, seed ^ 0x9e3779b97f4a7c15);
        let mut c = fill_strided(m, n, ldc, seed ^ 0xdeadbeef);
        let mut expect = c.clone();
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i + p * lda] * b[j + p * ldb];
                }
                expect[i + j * ldc] += alpha * acc;
            }
        }
        gemm_nt_acc_packed_with(bs, m, n, k, alpha, &a, lda.max(1), &b, ldb.max(1), &mut c, ldc.max(1));
        for (x, y) in c.iter().zip(&expect) {
            prop_assert!((x - y).abs() < 1e-10 || (x == y), "{x} vs {y}");
        }
        prop_assert!(padding_untouched(&c, m, n, ldc));
    }

    #[test]
    fn packed_nn_random_shapes_and_strides(
        (m, n, k) in (0usize..300, 0usize..24, 0usize..150),
        (pa, pb, pc) in (0usize..5, 0usize..5, 0usize..5),
        alpha in -2.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        // Large enough `m`/`k` to cross the default MC/KC tile boundaries
        // (the nn entry point runs under the per-scalar blocking).
        let (lda, ldb, ldc) = (m + pa, k + pb, m + pc);
        let a = fill_strided(m, k, lda, seed);
        let b = fill_strided(k, n, ldb, seed ^ 0x9e3779b97f4a7c15);
        let mut c = fill_strided(m, n, ldc, seed ^ 0xdeadbeef);
        let mut expect = c.clone();
        for j in 0..n {
            for i in 0..m {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i + p * lda] * b[p + j * ldb];
                }
                expect[i + j * ldc] += alpha * acc;
            }
        }
        gemm_nn_acc_packed(m, n, k, alpha, &a, lda.max(1), &b, ldb.max(1), &mut c, ldc.max(1));
        for (x, y) in c.iter().zip(&expect) {
            prop_assert!((x - y).abs() < 1e-10 || (x == y), "{x} vs {y}");
        }
        prop_assert!(padding_untouched(&c, m, n, ldc));
    }

    #[test]
    fn packed_lower_random_shapes_and_strides(
        (n, k) in (0usize..90, 0usize..60),
        (pa, pb, pc) in (0usize..5, 0usize..5, 0usize..5),
        alpha in -2.0f64..2.0,
        seed in 0u64..1_000_000,
    ) {
        // `n` up to 90 crosses several of the lower kernel's column tiles.
        let (lda, ldb, ldc) = (n + pa, n + pb, n + pc);
        let a = fill_strided(n, k, lda, seed);
        let b = fill_strided(n, k, ldb, seed ^ 0x9e3779b97f4a7c15);
        let mut c = fill_strided(n, n, ldc, seed ^ 0xdeadbeef);
        let mut expect = c.clone();
        for j in 0..n {
            for i in j..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a[i + p * lda] * b[j + p * ldb];
                }
                expect[i + j * ldc] += alpha * acc;
            }
        }
        gemm_nt_acc_lower_packed(n, k, alpha, &a, lda.max(1), &b, ldb.max(1), &mut c, ldc.max(1));
        // Exact match required above the diagonal: the strictly upper
        // triangle (and the padding) must never be written.
        for (x, y) in c.iter().zip(&expect) {
            prop_assert!((x - y).abs() < 1e-10 || (x == y), "{x} vs {y}");
        }
        prop_assert!(padding_untouched(&c, n, n, ldc));
    }
}
