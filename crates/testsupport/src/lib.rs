//! Shared test scaffolding for the workspace.
//!
//! Almost every crate's tests need the same setup: a small grid problem
//! pushed through `nested_dissection → analyze → map_and_schedule` to get
//! a realistic block symbol, task graph, or schedule. This crate hoists
//! that pipeline into one place (it used to be copy-pasted across the
//! multifrontal, sched, and trace test modules) so tests state only what
//! they vary: grid shape, leaf size, processor count.
//!
//! Everything here is deterministic — same arguments, same artifacts —
//! which is what the analyze-determinism suites rely on when they compare
//! sequential and parallel runs.

#![warn(missing_docs)]

use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
use pastix_graph::{CsrGraph, SymCsc};
use pastix_machine::MachineModel;
use pastix_ordering::{nested_dissection, OrderingOptions};
use pastix_sched::{map_and_schedule, Mapping, SchedOptions};
use pastix_symbolic::{analyze, Analysis, AnalysisOptions, SymbolMatrix};

/// The adjacency graph of an `nx × ny` 5-point grid (the canonical test
/// pattern: planar, regular, with real separator structure under nested
/// dissection).
pub fn grid_graph(nx: usize, ny: usize) -> CsrGraph {
    let mut e = Vec::new();
    let id = |x: usize, y: usize| (x + nx * y) as u32;
    for y in 0..ny {
        for x in 0..nx {
            if x + 1 < nx {
                e.push((id(x, y), id(x + 1, y)));
            }
            if y + 1 < ny {
                e.push((id(x, y), id(x, y + 1)));
            }
        }
    }
    CsrGraph::from_edges(nx * ny, &e)
}

/// Nested dissection (with the given leaf size) plus default symbolic
/// analysis of `g`.
pub fn graph_analysis(g: &CsrGraph, leaf_size: usize) -> Analysis {
    let ord = nested_dissection(g, &OrderingOptions { leaf_size, ..Default::default() });
    analyze(g, &ord, &AnalysisOptions::default())
}

/// Block symbol of an `nx × ny` grid ordered by nested dissection with
/// the given leaf size. The symbol depends only on the pattern, so tests
/// that never touch numeric values start here.
pub fn grid_symbol(nx: usize, ny: usize, leaf_size: usize) -> SymbolMatrix {
    graph_analysis(&grid_graph(nx, ny), leaf_size).symbol
}

/// A permuted SPD grid system and its block symbol: the input pair of
/// every sequential numeric-factorization test. `seed` selects the
/// random SPD values (`ValueKind::RandomSpd`).
pub fn grid_pipeline(
    nx: usize,
    ny: usize,
    nz: usize,
    leaf_size: usize,
    seed: u64,
) -> (SymCsc<f64>, SymbolMatrix) {
    let a = grid_spd::<f64>(nx, ny, nz, Stencil::Star, false, ValueKind::RandomSpd(seed));
    let g = a.to_graph();
    let ord = nested_dissection(&g, &OrderingOptions { leaf_size, ..Default::default() });
    let an = analyze(&g, &ord, &AnalysisOptions::default());
    (a.permuted(&an.perm), an.symbol)
}

/// Full pre-processing of an `nx × ny` grid for `procs` SP2 processors:
/// ordering, symbolic analysis, and mapping/scheduling under `opts`.
pub fn grid_mapping(
    nx: usize,
    ny: usize,
    leaf_size: usize,
    procs: usize,
    opts: &SchedOptions,
) -> Mapping {
    let an = graph_analysis(&grid_graph(nx, ny), leaf_size);
    map_and_schedule(&an.symbol, &MachineModel::sp2(procs), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_graph_shape() {
        let g = grid_graph(4, 3);
        assert_eq!(g.n(), 12);
        // Interior vertex (1,1) has 4 neighbors.
        assert_eq!(g.neighbors(5).len(), 4);
    }

    #[test]
    fn helpers_are_deterministic() {
        let s1 = grid_symbol(8, 8, 8);
        let s2 = grid_symbol(8, 8, 8);
        assert_eq!(s1.cblks, s2.cblks);
        assert_eq!(s1.bloks, s2.bloks);
        let m1 = grid_mapping(8, 8, 8, 4, &SchedOptions::default());
        let m2 = grid_mapping(8, 8, 8, 4, &SchedOptions::default());
        assert_eq!(m1.schedule.digest(), m2.schedule.digest());
    }

    #[test]
    fn pipeline_returns_permuted_matrix_matching_symbol() {
        let (ap, sym) = grid_pipeline(6, 5, 1, 8, 7);
        assert_eq!(ap.n(), sym.n);
        assert_eq!(sym.n, 30);
    }
}
