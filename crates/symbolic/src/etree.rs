//! Scalar elimination tree, postordering and column counts.
//!
//! These are the classical building blocks under the block symbolic
//! factorization: Liu's elimination-tree algorithm with path compression,
//! a depth-first postorder (which makes supernodes occupy consecutive
//! columns without changing fill), and the row-subtree column-count
//! algorithm that yields `|L(:,j)|` in `O(|L|)` time.
//!
//! The graph handed to these functions must already be permuted into
//! elimination order (vertex `j` is eliminated at step `j`).

use pastix_graph::{CsrGraph, Permutation};

/// Sentinel for "no parent" (tree roots).
pub const NO_PARENT: u32 = u32::MAX;

/// Computes the elimination tree of a symmetric pattern given as an
/// adjacency graph in elimination order. `parent[j]` is the etree parent of
/// column `j`, or [`NO_PARENT`] for roots.
pub fn etree(g: &CsrGraph) -> Vec<u32> {
    let n = g.n();
    let mut parent = vec![NO_PARENT; n];
    // Virtual ancestors with path compression.
    let mut ancestor = vec![NO_PARENT; n];
    for j in 0..n {
        for &i in g.neighbors(j) {
            let mut i = i as usize;
            if i >= j {
                continue;
            }
            // Climb from i to the current root, compressing to j.
            loop {
                let next = ancestor[i];
                ancestor[i] = j as u32;
                if next == NO_PARENT {
                    parent[i] = j as u32;
                    break;
                }
                if next as usize == j {
                    break;
                }
                i = next as usize;
            }
        }
    }
    parent
}

/// Depth-first postorder of the elimination forest; returns a permutation
/// `post` such that `post.new_of(v)` is the postorder rank of vertex `v`.
/// Children are visited in ascending order, so an already-postordered tree
/// maps to the identity.
pub fn postorder(parent: &[u32]) -> Permutation {
    let n = parent.len();
    // Build child lists (ascending by construction).
    let mut first_child = vec![u32::MAX; n];
    let mut next_sibling = vec![u32::MAX; n];
    let mut roots: Vec<u32> = Vec::new();
    for v in (0..n).rev() {
        match parent[v] {
            NO_PARENT => roots.push(v as u32),
            p => {
                next_sibling[v] = first_child[p as usize];
                first_child[p as usize] = v as u32;
            }
        }
    }
    roots.reverse();
    let mut post = vec![0u32; n];
    let mut rank = 0u32;
    let mut stack: Vec<(u32, bool)> = Vec::new();
    for &r in roots.iter().rev() {
        stack.push((r, false));
    }
    // Iterative DFS emitting on exit.
    while let Some((v, expanded)) = stack.pop() {
        if expanded {
            post[v as usize] = rank;
            rank += 1;
            continue;
        }
        stack.push((v, true));
        // Push children so the smallest is processed first.
        let mut kids = Vec::new();
        let mut c = first_child[v as usize];
        while c != u32::MAX {
            kids.push(c);
            c = next_sibling[c as usize];
        }
        for &k in kids.iter().rev() {
            stack.push((k, false));
        }
    }
    debug_assert_eq!(rank as usize, n);
    Permutation::from_invp(post)
}

/// Column counts of the Cholesky factor: `count[j] = |L(:,j)|` including
/// the diagonal. Uses row-subtree traversal with marking: for each row `i`,
/// the nonzero columns of row `i` of `L` are exactly the vertices on the
/// etree paths from the neighbors `j < i` up toward `i`.
pub fn col_counts(g: &CsrGraph, parent: &[u32]) -> Vec<u64> {
    let n = g.n();
    let mut count = vec![1u64; n]; // diagonal
    let mut mark = vec![u32::MAX; n];
    for i in 0..n {
        mark[i] = i as u32;
        for &jj in g.neighbors(i) {
            let mut j = jj as usize;
            if j >= i {
                continue;
            }
            while mark[j] != i as u32 {
                mark[j] = i as u32;
                count[j] += 1; // L(i, j) ≠ 0
                match parent[j] {
                    NO_PARENT => break,
                    p => j = p as usize,
                }
            }
        }
    }
    count
}

/// Parallel [`col_counts`]: rows are split into contiguous chunks, each
/// chunk counted with its own mark array, and the per-chunk counts summed
/// in chunk order. Every row contributes an independent `+1` per column,
/// so the integer sums are bitwise-identical to the sequential pass at
/// any thread count.
pub fn col_counts_par(g: &CsrGraph, parent: &[u32], threads: usize) -> Vec<u64> {
    let n = g.n();
    if threads <= 1 || n < 2048 {
        return col_counts(g, parent);
    }
    let bounds = pastix_graph::par::chunk_bounds(n, threads);
    let partials = pastix_graph::par::par_map_indexed(threads, bounds.len() - 1, |c| {
        let (lo, hi) = (bounds[c], bounds[c + 1]);
        let mut count = vec![0u64; n];
        let mut mark = vec![u32::MAX; n];
        for i in lo..hi {
            mark[i] = i as u32;
            for &jj in g.neighbors(i) {
                let mut j = jj as usize;
                if j >= i {
                    continue;
                }
                while mark[j] != i as u32 {
                    mark[j] = i as u32;
                    count[j] += 1;
                    match parent[j] {
                        NO_PARENT => break,
                        p => j = p as usize,
                    }
                }
            }
        }
        count
    });
    let mut count = vec![1u64; n]; // diagonal
    for part in &partials {
        for (c, p) in count.iter_mut().zip(part) {
            *c += *p;
        }
    }
    count
}

/// Total factor nonzeros `Σ count[j]` and off-diagonal count.
pub fn nnz_l(counts: &[u64]) -> (u64, u64) {
    let total: u64 = counts.iter().sum();
    (total, total - counts.len() as u64)
}

/// Factorization operation count with the `(c_j + 1)²` convention
/// (`c_j` = off-diagonal count of column `j`): the exact flop count of a
/// right-looking Cholesky, the convention behind the paper's `OPC` column.
pub fn opc(counts: &[u64]) -> f64 {
    counts
        .iter()
        .map(|&c| {
            let cj = (c - 1) as f64;
            (cj + 1.0) * (cj + 1.0)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dense lower-triangular reference symbolic factorization: returns the
    /// column patterns of L for a graph in elimination order.
    fn reference_patterns(g: &CsrGraph) -> Vec<Vec<u32>> {
        let n = g.n();
        // Start from A's lower pattern, then fill: processing columns left
        // to right, for column j, for each i in pattern(j) with i > j, add
        // pattern(j) \ {<= i} to pattern(i)... classic quadratic approach.
        let mut pat: Vec<std::collections::BTreeSet<u32>> = (0..n)
            .map(|j| {
                g.neighbors(j)
                    .iter()
                    .copied()
                    .filter(|&i| i as usize > j)
                    .collect()
            })
            .collect();
        for j in 0..n {
            if let Some(&p) = pat[j].iter().next() {
                let fill: Vec<u32> = pat[j].iter().copied().filter(|&i| i != p).collect();
                for f in fill {
                    pat[p as usize].insert(f);
                }
            }
        }
        pat.into_iter().map(|s| s.into_iter().collect()).collect()
    }

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    #[test]
    fn etree_of_path_is_chain() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let p = etree(&g);
        assert_eq!(p, vec![1, 2, 3, 4, NO_PARENT]);
    }

    #[test]
    fn etree_matches_reference_parent() {
        // parent(j) = min { i : L(i,j) != 0, i > j }.
        for g in [grid(4, 4), grid(5, 3)] {
            let parent = etree(&g);
            let pat = reference_patterns(&g);
            for j in 0..g.n() {
                let expect = pat[j].first().copied().unwrap_or(NO_PARENT);
                assert_eq!(parent[j], expect, "col {j}");
            }
        }
    }

    #[test]
    fn col_counts_match_reference() {
        for g in [grid(4, 4), grid(6, 2), grid(3, 7)] {
            let parent = etree(&g);
            let counts = col_counts(&g, &parent);
            let pat = reference_patterns(&g);
            for j in 0..g.n() {
                assert_eq!(counts[j], pat[j].len() as u64 + 1, "col {j}");
            }
        }
    }

    #[test]
    fn postorder_of_chain_is_identity() {
        let parent = vec![1, 2, 3, NO_PARENT];
        let post = postorder(&parent);
        assert_eq!(post.perm(), &[0, 1, 2, 3]);
    }

    #[test]
    fn postorder_is_valid_and_topological() {
        let g = grid(7, 5);
        let parent = etree(&g);
        let post = postorder(&parent);
        assert!(post.validate());
        // Parent must come after every vertex of its subtree.
        for v in 0..g.n() {
            if parent[v] != NO_PARENT {
                assert!(
                    post.new_of(parent[v] as usize) > post.new_of(v),
                    "postorder violates topology at {v}"
                );
            }
        }
    }

    #[test]
    fn forest_handled() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let parent = etree(&g);
        assert_eq!(parent[1], NO_PARENT);
        assert_eq!(parent[2], NO_PARENT);
        assert_eq!(parent[4], NO_PARENT);
        let post = postorder(&parent);
        assert!(post.validate());
        let counts = col_counts(&g, &parent);
        assert_eq!(counts, vec![2, 1, 1, 2, 1]);
    }

    #[test]
    fn opc_of_diagonal_matrix() {
        let g = CsrGraph::from_edges(4, &[]);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        assert_eq!(opc(&counts), 4.0); // each column: (0+1)^2
    }

    #[test]
    fn nnz_l_totals() {
        let counts = vec![3u64, 2, 1];
        assert_eq!(nnz_l(&counts), (6, 3));
    }
}
