//! The symbol matrix and its block symbolic factorization.
//!
//! Following the real PaStiX data structure: the factor `L` is a list of
//! `N` **column blocks** ([`CBlk`]), each owning one dense diagonal block
//! and a sorted list of dense off-diagonal blocks ([`Blok`]), every block
//! being a row interval that faces exactly one column block. The block
//! symbolic factorization computes this structure from the supernode
//! partition in quasi-linear time (Charrier–Roman): the structure of column
//! block `k` is the interval-union of its sub-diagonal `A`-structure and of
//! the structures of the column blocks whose first off-diagonal block faces
//! `k` (its children in the block elimination tree).

use crate::etree::NO_PARENT;
use crate::supernodes::SupernodePartition;
use pastix_graph::CsrGraph;

/// One dense off-diagonal block: rows `frow..=lrow`, facing column block
/// `fcblk`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blok {
    /// First row of the block.
    pub frow: u32,
    /// Last row (inclusive).
    pub lrow: u32,
    /// Column block this row interval faces.
    pub fcblk: u32,
}

impl Blok {
    /// Number of rows in the block.
    #[inline]
    pub fn nrows(&self) -> usize {
        (self.lrow - self.frow + 1) as usize
    }
}

/// One column block: columns `fcol..=lcol`, blocks `blok_range` into
/// [`SymbolMatrix::bloks`] (the first being the diagonal block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CBlk {
    /// First column.
    pub fcol: u32,
    /// Last column (inclusive).
    pub lcol: u32,
    /// Index of the first block (the diagonal block) in the blok array.
    pub blok_start: usize,
    /// One past the last block.
    pub blok_end: usize,
}

impl CBlk {
    /// Column count of the block.
    #[inline]
    pub fn width(&self) -> usize {
        (self.lcol - self.fcol + 1) as usize
    }
}

/// Block structure of the factor `L`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymbolMatrix {
    /// Matrix order (scalar columns).
    pub n: usize,
    /// Column blocks, ascending by column range.
    pub cblks: Vec<CBlk>,
    /// All blocks; each column block's blocks are contiguous, sorted by
    /// row, starting with the diagonal block.
    pub bloks: Vec<Blok>,
}

impl SymbolMatrix {
    /// Number of column blocks.
    #[inline]
    pub fn n_cblks(&self) -> usize {
        self.cblks.len()
    }

    /// Blocks of column block `k`, diagonal block first.
    #[inline]
    pub fn bloks_of(&self, k: usize) -> &[Blok] {
        &self.bloks[self.cblks[k].blok_start..self.cblks[k].blok_end]
    }

    /// Off-diagonal blocks of column block `k`.
    #[inline]
    pub fn off_bloks_of(&self, k: usize) -> &[Blok] {
        &self.bloks[self.cblks[k].blok_start + 1..self.cblks[k].blok_end]
    }

    /// Rows strictly below the diagonal block of column block `k`.
    pub fn offrows(&self, k: usize) -> usize {
        self.off_bloks_of(k).iter().map(|b| b.nrows()).sum()
    }

    /// Column block containing scalar column `j`.
    pub fn cblk_of_col(&self, j: usize) -> usize {
        let mut lo = 0usize;
        let mut hi = self.cblks.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cblks[mid].fcol as usize <= j {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Finds the blok of column block `k` whose row interval contains
    /// `[frow, lrow]` (the diagonal block included). Panics when absent —
    /// factor structures are nested, so a missing cover is a logic error.
    pub fn covering_blok(&self, k: usize, frow: u32, lrow: u32) -> usize {
        let cb = &self.cblks[k];
        let bloks = &self.bloks[cb.blok_start..cb.blok_end];
        let mut lo = 0usize;
        let mut hi = bloks.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if bloks[mid].frow <= frow {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let b = &bloks[lo];
        assert!(
            b.frow <= frow && lrow <= b.lrow,
            "rows [{frow},{lrow}] not covered by cblk {k} (found [{},{}])",
            b.frow,
            b.lrow
        );
        cb.blok_start + lo
    }

    /// Column block that owns global blok `b` (binary search on
    /// `blok_start`, the inverse of the `cblk.blok_start..blok_end`
    /// ranges).
    pub fn owner_of_blok(&self, b: usize) -> usize {
        debug_assert!(b < self.bloks.len());
        let mut lo = 0usize;
        let mut hi = self.cblks.len();
        while lo + 1 < hi {
            let mid = (lo + hi) / 2;
            if self.cblks[mid].blok_start <= b {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Whether global blok `b` is a candidate for low-rank compression
    /// purely from the block symbol: an off-diagonal blok whose row count
    /// and owning column-block width both reach `min_block`. Diagonal
    /// bloks are never compressible (the `L·D·Lᵀ` pivot path needs them
    /// dense), and small blocks cannot amortize the `U·Vᵀ` bookkeeping.
    pub fn blok_compressible(&self, b: usize, min_block: usize) -> bool {
        let k = self.owner_of_blok(b);
        let cb = &self.cblks[k];
        b != cb.blok_start
            && self.bloks[b].nrows() >= min_block
            && cb.width() >= min_block
    }

    /// Block elimination tree: `parent[k]` is the facing column block of
    /// `k`'s first off-diagonal block ([`NO_PARENT`] for roots).
    pub fn block_etree(&self) -> Vec<u32> {
        self.cblks
            .iter()
            .enumerate()
            .map(|(k, _)| match self.off_bloks_of(k).first() {
                Some(b) => b.fcblk,
                None => NO_PARENT,
            })
            .collect()
    }

    /// Factor nonzero count `NNZ_L` with the paper's convention
    /// (off-diagonal terms of the triangular part), plus the total stored
    /// entries (including the dense-block padding and diagonal).
    pub fn nnz(&self) -> SymbolNnz {
        let mut off = 0u64;
        let mut stored = 0u64;
        for k in 0..self.n_cblks() {
            let w = self.cblks[k].width() as u64;
            let h = self.offrows(k) as u64;
            off += w * (w - 1) / 2 + w * h;
            stored += w * w + w * h; // solver stores the full diagonal square
        }
        SymbolNnz {
            nnz_offdiag: off,
            stored_entries: stored,
        }
    }

    /// Factorization operation count (`OPC`) with the `(c_j + 1)²`
    /// convention, computed per scalar column from the block structure.
    pub fn opc(&self) -> f64 {
        let mut total = 0.0;
        for k in 0..self.n_cblks() {
            let w = self.cblks[k].width() as u64;
            let h = self.offrows(k) as u64;
            for t in 0..w {
                let cj = (w - 1 - t) + h;
                total += ((cj + 1) * (cj + 1)) as f64;
            }
        }
        total
    }

    /// Structural validation (tests): intervals sorted and disjoint, within
    /// the facing block's column range, diagonal block first.
    pub fn validate(&self) -> Result<(), String> {
        if self.cblks.is_empty() {
            return if self.n == 0 { Ok(()) } else { Err("no cblks".into()) };
        }
        let mut expect_col = 0u32;
        for (k, cb) in self.cblks.iter().enumerate() {
            if cb.fcol != expect_col {
                return Err(format!("cblk {k} starts at {} expected {expect_col}", cb.fcol));
            }
            if cb.lcol < cb.fcol {
                return Err(format!("cblk {k} empty"));
            }
            expect_col = cb.lcol + 1;
            let bloks = self.bloks_of(k);
            if bloks.is_empty() {
                return Err(format!("cblk {k} has no diagonal block"));
            }
            let d = bloks[0];
            if d.frow != cb.fcol || d.lrow != cb.lcol || d.fcblk as usize != k {
                return Err(format!("cblk {k} diagonal block malformed"));
            }
            let mut prev_end = d.lrow;
            for b in &bloks[1..] {
                if b.frow <= prev_end {
                    return Err(format!("cblk {k} blocks overlap or unsorted"));
                }
                let f = &self.cblks[b.fcblk as usize];
                if b.frow < f.fcol || b.lrow > f.lcol {
                    return Err(format!(
                        "cblk {k} block [{},{}] escapes facing cblk {}",
                        b.frow, b.lrow, b.fcblk
                    ));
                }
                prev_end = b.lrow;
            }
        }
        if expect_col as usize != self.n {
            return Err("cblks do not cover all columns".into());
        }
        Ok(())
    }
}

/// Factor counts reported by [`SymbolMatrix::nnz`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolNnz {
    /// Off-diagonal entries of the triangular factor (paper's `NNZ_L`).
    pub nnz_offdiag: u64,
    /// Entries the solver will actually allocate (dense blocks).
    pub stored_entries: u64,
}

/// Shape statistics of a symbol matrix — the block granularity the
/// repartitioning step controls and the solver's BLAS efficiency depends
/// on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SymbolShape {
    /// Number of column blocks.
    pub n_cblks: usize,
    /// Number of blocks (diagonal blocks included).
    pub n_bloks: usize,
    /// Widest column block.
    pub max_width: usize,
    /// Mean column-block width.
    pub mean_width: f64,
    /// Tallest off-diagonal block.
    pub max_blok_rows: usize,
    /// Mean off-diagonal block height.
    pub mean_blok_rows: f64,
    /// Mean off-diagonal blocks per column block.
    pub mean_bloks_per_cblk: f64,
}

impl SymbolMatrix {
    /// Computes the [`SymbolShape`] statistics.
    pub fn shape(&self) -> SymbolShape {
        let n_cblks = self.n_cblks();
        let mut max_width = 0usize;
        let mut sum_width = 0usize;
        let mut max_rows = 0usize;
        let mut sum_rows = 0usize;
        let mut n_off = 0usize;
        for k in 0..n_cblks {
            let w = self.cblks[k].width();
            max_width = max_width.max(w);
            sum_width += w;
            for b in self.off_bloks_of(k) {
                let h = b.nrows();
                max_rows = max_rows.max(h);
                sum_rows += h;
                n_off += 1;
            }
        }
        SymbolShape {
            n_cblks,
            n_bloks: self.bloks.len(),
            max_width,
            mean_width: if n_cblks > 0 { sum_width as f64 / n_cblks as f64 } else { 0.0 },
            max_blok_rows: max_rows,
            mean_blok_rows: if n_off > 0 { sum_rows as f64 / n_off as f64 } else { 0.0 },
            mean_bloks_per_cblk: if n_cblks > 0 { n_off as f64 / n_cblks as f64 } else { 0.0 },
        }
    }
}

/// Computes the block symbolic factorization of the permuted pattern `g`
/// (adjacency in elimination order) over the supernode partition.
pub fn block_symbolic(g: &CsrGraph, part: &SupernodePartition) -> SymbolMatrix {
    block_symbolic_par(g, part, 1)
}

/// [`block_symbolic`] with an explicit thread count. The per-supernode
/// `A`-structure gathering (phase A) is independent across supernodes and
/// runs chunked over `threads`; the bottom-up child merge stays
/// sequential. Results are bitwise-identical at any thread count.
pub fn block_symbolic_par(g: &CsrGraph, part: &SupernodePartition, threads: usize) -> SymbolMatrix {
    let n = g.n();
    let ns = part.len();
    if ns == 0 {
        return SymbolMatrix {
            n,
            cblks: Vec::new(),
            bloks: Vec::new(),
        };
    }
    // Supernode of each column.
    let mut sn_of = vec![0u32; n];
    for s in 0..ns {
        for j in part.first_col(s)..part.end_col(s) {
            sn_of[j] = s as u32;
        }
    }
    // Phase A: gather each supernode's scalar rows from A below its
    // diagonal and compress them to intervals — independent per
    // supernode, so chunked across threads (deterministic by index).
    let eff = if ns >= 128 { threads } else { 1 };
    let mut a_intervals = pastix_graph::par::par_map_indexed(eff, ns, |k| {
        let fcol = part.first_col(k);
        let lcol = part.end_col(k) - 1;
        let mut rows: Vec<u32> = Vec::new();
        for j in fcol..=lcol {
            for &i in g.neighbors(j) {
                if i as usize > lcol {
                    rows.push(i);
                }
            }
        }
        rows.sort_unstable();
        rows.dedup();
        rows_to_intervals(&rows)
    });
    // Phase B (sequential): bottom-up merge of children contributions.
    // Row structures as sorted disjoint interval lists (rows > lcol(k)).
    // children[k]: cblks whose first off-diagonal interval faces k.
    let mut struct_of: Vec<Vec<(u32, u32)>> = Vec::with_capacity(ns);
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); ns];
    for k in 0..ns {
        let lcol = part.end_col(k) - 1;
        let mut intervals = std::mem::take(&mut a_intervals[k]);
        // Merge children contributions (their intervals above lcol are
        // dropped; each interval list is already sorted & disjoint).
        let kids = std::mem::take(&mut children[k]);
        for &c in &kids {
            let contrib: Vec<(u32, u32)> = struct_of[c as usize]
                .iter()
                .filter_map(|&(f, l)| {
                    if (l as usize) <= lcol {
                        None
                    } else {
                        Some((f.max(lcol as u32 + 1), l))
                    }
                })
                .collect();
            intervals = merge_interval_lists(&intervals, &contrib);
        }
        // Register k as a child of the cblk its first interval faces.
        if let Some(&(f, _)) = intervals.first() {
            let p = sn_of[f as usize] as usize;
            children[p].push(k as u32);
        }
        struct_of.push(intervals);
    }

    // Emit cblks and bloks, splitting intervals at supernode boundaries so
    // each block faces exactly one column block.
    let mut cblks = Vec::with_capacity(ns);
    let mut bloks = Vec::new();
    for k in 0..ns {
        let fcol = part.first_col(k) as u32;
        let lcol = (part.end_col(k) - 1) as u32;
        let blok_start = bloks.len();
        bloks.push(Blok {
            frow: fcol,
            lrow: lcol,
            fcblk: k as u32,
        });
        for &(f, l) in &struct_of[k] {
            let mut r = f;
            while r <= l {
                let s = sn_of[r as usize] as usize;
                let send = (part.end_col(s) - 1) as u32;
                let stop = l.min(send);
                bloks.push(Blok {
                    frow: r,
                    lrow: stop,
                    fcblk: s as u32,
                });
                r = stop + 1;
            }
        }
        cblks.push(CBlk {
            fcol,
            lcol,
            blok_start,
            blok_end: bloks.len(),
        });
    }
    SymbolMatrix { n, cblks, bloks }
}

/// Converts a sorted list of distinct rows into maximal intervals.
fn rows_to_intervals(rows: &[u32]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::new();
    for &r in rows {
        match out.last_mut() {
            Some((_, l)) if *l + 1 == r => *l = r,
            _ => out.push((r, r)),
        }
    }
    out
}

/// Unions two sorted disjoint interval lists into one.
fn merge_interval_lists(a: &[(u32, u32)], b: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    let push = |iv: (u32, u32), out: &mut Vec<(u32, u32)>| match out.last_mut() {
        Some((_, l)) if *l as u64 + 1 >= iv.0 as u64 => *l = (*l).max(iv.1),
        _ => out.push(iv),
    };
    while i < a.len() || j < b.len() {
        let take_a = j >= b.len() || (i < a.len() && a[i].0 <= b[j].0);
        if take_a {
            push(a[i], &mut out);
            i += 1;
        } else {
            push(b[j], &mut out);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{col_counts, etree};
    use crate::supernodes::fundamental_supernodes;

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    fn symbol_for(g: &CsrGraph) -> (SymbolMatrix, Vec<u64>) {
        let parent = etree(g);
        let counts = col_counts(g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        (block_symbolic(g, &sn), counts)
    }

    #[test]
    fn interval_helpers() {
        assert_eq!(rows_to_intervals(&[1, 2, 3, 7, 9, 10]), vec![(1, 3), (7, 7), (9, 10)]);
        assert_eq!(
            merge_interval_lists(&[(1, 3), (8, 9)], &[(2, 5), (7, 7), (11, 12)]),
            vec![(1, 5), (7, 9), (11, 12)]
        );
        assert_eq!(merge_interval_lists(&[], &[(0, 0)]), vec![(0, 0)]);
    }

    #[test]
    fn symbol_validates_on_grids() {
        for g in [grid(4, 4), grid(6, 3), grid(5, 5)] {
            let (sym, _) = symbol_for(&g);
            sym.validate().unwrap();
        }
    }

    #[test]
    fn block_nnz_matches_scalar_counts_on_fundamental_partition() {
        // On the *fundamental* supernode partition the block structure is
        // exact: NNZ_L from the symbol must equal the scalar column counts.
        for g in [grid(4, 4), grid(5, 3), grid(7, 2)] {
            let (sym, counts) = symbol_for(&g);
            let scalar_off: u64 = counts.iter().map(|&c| c - 1).sum();
            assert_eq!(sym.nnz().nnz_offdiag, scalar_off);
        }
    }

    #[test]
    fn block_opc_matches_scalar_opc() {
        for g in [grid(4, 4), grid(3, 6)] {
            let (sym, counts) = symbol_for(&g);
            let scalar_opc = crate::etree::opc(&counts);
            assert!((sym.opc() - scalar_opc).abs() < 1e-9);
        }
    }

    #[test]
    fn blok_ownership_and_compressibility() {
        let (sym, _) = symbol_for(&grid(6, 6));
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            for b in cb.blok_start..cb.blok_end {
                assert_eq!(sym.owner_of_blok(b), k, "blok {b}");
                // Diagonal bloks are never compressible.
                if b == cb.blok_start {
                    assert!(!sym.blok_compressible(b, 1));
                } else {
                    // At min_block 1 every off-diagonal blok qualifies;
                    // the dims gate matches the symbol exactly.
                    assert!(sym.blok_compressible(b, 1));
                    let want = sym.bloks[b].nrows() >= 2 && cb.width() >= 2;
                    assert_eq!(sym.blok_compressible(b, 2), want, "blok {b}");
                }
            }
        }
        // A threshold larger than any block keeps everything dense.
        assert!((0..sym.bloks.len()).all(|b| !sym.blok_compressible(b, sym.n + 1)));
    }

    #[test]
    fn block_etree_parents_are_later() {
        let (sym, _) = symbol_for(&grid(6, 6));
        let bt = sym.block_etree();
        for (k, &p) in bt.iter().enumerate() {
            if p != NO_PARENT {
                assert!(p as usize > k);
            }
        }
    }

    #[test]
    fn cblk_of_col_lookup() {
        let (sym, _) = symbol_for(&grid(5, 4));
        for k in 0..sym.n_cblks() {
            let cb = &sym.cblks[k];
            for j in cb.fcol..=cb.lcol {
                assert_eq!(sym.cblk_of_col(j as usize), k);
            }
        }
    }

    #[test]
    fn diagonal_matrix_symbol() {
        let g = CsrGraph::from_edges(3, &[]);
        let (sym, _) = symbol_for(&g);
        sym.validate().unwrap();
        assert_eq!(sym.nnz().nnz_offdiag, 0);
        for k in 0..sym.n_cblks() {
            assert!(sym.off_bloks_of(k).is_empty());
        }
    }

    #[test]
    fn shape_statistics() {
        let (sym, _) = symbol_for(&grid(6, 6));
        let sh = sym.shape();
        assert_eq!(sh.n_cblks, sym.n_cblks());
        assert_eq!(sh.n_bloks, sym.bloks.len());
        assert!(sh.max_width >= 1);
        assert!(sh.mean_width >= 1.0 && sh.mean_width <= sh.max_width as f64);
        // Splitting a wide symbol tightens max_width.
        let split = crate::split::split_symbol(&sym, 2);
        assert!(split.symbol.shape().max_width <= 2);
    }

    #[test]
    fn dense_clique_single_cblk() {
        let mut e = Vec::new();
        for i in 0..5u32 {
            for j in 0..i {
                e.push((i, j));
            }
        }
        let g = CsrGraph::from_edges(5, &e);
        let (sym, _) = symbol_for(&g);
        assert_eq!(sym.n_cblks(), 1);
        assert_eq!(sym.bloks.len(), 1);
        sym.validate().unwrap();
    }
}
