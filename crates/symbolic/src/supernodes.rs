//! Supernode partition: fundamental supernode detection and relaxed
//! amalgamation.
//!
//! A supernode is a maximal range of consecutive columns sharing (modulo
//! the triangle) the same off-diagonal row structure; the factor restricted
//! to a supernode is one dense trapezoidal panel, which is what makes the
//! BLAS-3 solver possible. The *fundamental* supernodes are detected from
//! the elimination tree and the column counts; *relaxed amalgamation* then
//! merges small supernodes into their parents, trading a bounded number of
//! explicit zeros for much better block granularity — the "supernodes
//! amalgamated for each subgraph" of the paper's ordering description.

use crate::etree::NO_PARENT;

/// A partition of the columns `0..n` into supernodes of consecutive
/// columns, with the supernodal elimination tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupernodePartition {
    /// `ranges[s]` = first column of supernode `s`; has `n_supernodes + 1`
    /// entries, the last being `n`.
    pub ptr: Vec<u32>,
    /// Supernodal elimination tree: parent supernode or [`NO_PARENT`].
    pub parent: Vec<u32>,
    /// Rows strictly below the supernode's columns in the factor
    /// (`|L(:, first col)| − width`), exact for fundamental supernodes and
    /// kept exact through amalgamation.
    pub offrows: Vec<u64>,
}

impl SupernodePartition {
    /// Number of supernodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the partition is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// First column of supernode `s`.
    #[inline]
    pub fn first_col(&self, s: usize) -> usize {
        self.ptr[s] as usize
    }

    /// One-past-last column of supernode `s`.
    #[inline]
    pub fn end_col(&self, s: usize) -> usize {
        self.ptr[s + 1] as usize
    }

    /// Width (number of columns) of supernode `s`.
    #[inline]
    pub fn width(&self, s: usize) -> usize {
        (self.ptr[s + 1] - self.ptr[s]) as usize
    }

    /// Supernode containing column `j` (binary search).
    pub fn supernode_of(&self, j: usize) -> usize {
        match self.ptr.binary_search(&(j as u32)) {
            Ok(s) => s.min(self.len() - 1),
            Err(s) => s - 1,
        }
    }

    /// Structural validation for tests.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        if self.ptr.first() != Some(&0) || self.ptr.last() != Some(&(n as u32)) {
            return Err("ptr must span 0..n".into());
        }
        if self.ptr.windows(2).any(|w| w[0] >= w[1]) {
            return Err("ptr must be strictly increasing".into());
        }
        if self.parent.len() + 1 != self.ptr.len() || self.offrows.len() != self.parent.len() {
            return Err("array length mismatch".into());
        }
        for (s, &p) in self.parent.iter().enumerate() {
            if p != NO_PARENT && p as usize <= s {
                return Err(format!("parent of {s} not after it"));
            }
        }
        Ok(())
    }
}

/// Detects fundamental supernodes from the scalar elimination tree and the
/// column counts (Liu): column `j` extends the supernode of `j − 1` iff
/// `parent(j−1) = j`, `count(j) = count(j−1) − 1` and `j − 1` is the only
/// child of `j` that could extend it (enforced via child counting).
pub fn fundamental_supernodes(parent: &[u32], counts: &[u64]) -> SupernodePartition {
    let n = parent.len();
    assert_eq!(counts.len(), n);
    if n == 0 {
        return SupernodePartition {
            ptr: vec![0],
            parent: Vec::new(),
            offrows: Vec::new(),
        };
    }
    // Number of etree children of each column.
    let mut n_children = vec![0u32; n];
    for &p in parent {
        if p != NO_PARENT {
            n_children[p as usize] += 1;
        }
    }
    let mut ptr = vec![0u32];
    for j in 1..n {
        let extends = parent[j - 1] == j as u32
            && counts[j] == counts[j - 1] - 1
            && n_children[j] == 1;
        if !extends {
            ptr.push(j as u32);
        }
    }
    ptr.push(n as u32);

    let ns = ptr.len() - 1;
    let mut sn_of = vec![0u32; n];
    for s in 0..ns {
        for j in ptr[s]..ptr[s + 1] {
            sn_of[j as usize] = s as u32;
        }
    }
    let mut sparent = vec![NO_PARENT; ns];
    let mut offrows = vec![0u64; ns];
    for s in 0..ns {
        let last = (ptr[s + 1] - 1) as usize;
        let p = parent[last];
        if p != NO_PARENT {
            sparent[s] = sn_of[p as usize];
        }
        let first = ptr[s] as usize;
        let width = (ptr[s + 1] - ptr[s]) as u64;
        offrows[s] = counts[first] - width;
    }
    SupernodePartition {
        ptr,
        parent: sparent,
        offrows,
    }
}

/// Options for relaxed amalgamation.
#[derive(Debug, Clone, Copy)]
pub struct AmalgamationOptions {
    /// Maximum accepted ratio of explicit zeros over the merged supernode's
    /// entries (PaStiX's `rat_cblk`-style knob). The ratio is of the
    /// group's *accumulated* padding, so cascaded merges can never exceed
    /// it in total; the default is tuned for that semantics (an
    /// incremental-per-merge test at the same value merges far more).
    pub fill_ratio: f64,
    /// Supernodes narrower than this are merged into their parent whenever
    /// the fill ratio permits, even if already "efficient".
    pub min_width: usize,
}

impl Default for AmalgamationOptions {
    fn default() -> Self {
        Self {
            fill_ratio: 0.20,
            min_width: 8,
        }
    }
}

/// Relaxed amalgamation: merges a child supernode into its (etree-)parent
/// supernode when the child is **column-adjacent** to the parent's current
/// group and the explicit zeros introduced stay below `opts.fill_ratio` of
/// the merged panel.
///
/// Adjacency plus the classical structure-subset property
/// `struct(child) \ cols(child) ⊆ cols(parent) ∪ struct(parent)` make the
/// zero count exact: each child column gains
/// `(group width + group offrows) − offrows(child)` padded entries.
/// Supernodes are processed right to left so a parent group grows leftward
/// through chains of children.
///
/// The ratio test is on the *accumulated* padding of the group — every
/// zero introduced by earlier merges counts against later ones — so a
/// chain of individually-cheap merges cannot cascade into one dense
/// panel (each incremental merge looks small next to the ever-growing
/// triangle, but the total padding does not).
pub fn amalgamate(part: &SupernodePartition, opts: &AmalgamationOptions) -> SupernodePartition {
    let ns = part.len();
    if ns == 0 {
        return part.clone();
    }
    let mut absorbed_into: Vec<u32> = vec![NO_PARENT; ns];
    // Per group root: current width, first column, offrows (the root's
    // own), and the explicit zeros accumulated by merges so far.
    let mut gwidth: Vec<u64> = (0..ns).map(|s| part.width(s) as u64).collect();
    let mut gfirst: Vec<u32> = part.ptr[..ns].to_vec();
    let mut gzeros: Vec<u64> = vec![0; ns];
    let offrows: &[u64] = &part.offrows;

    let find = |absorbed: &[u32], mut s: usize| -> usize {
        while absorbed[s] != NO_PARENT {
            s = absorbed[s] as usize;
        }
        s
    };

    for s in (0..ns).rev() {
        let p = part.parent[s];
        if p == NO_PARENT {
            continue;
        }
        let root = find(&absorbed_into, p as usize);
        // The child must end exactly where the absorbing group begins.
        if part.ptr[s + 1] != gfirst[root] {
            continue;
        }
        let wc = gwidth[s]; // includes anything already merged into s
        let wg = gwidth[root];
        let target = wg + offrows[root];
        if offrows[s] > target {
            // Subset property violated (defensive; should not happen for
            // etree-parent merges) — skip to stay exact.
            continue;
        }
        let zeros = wc * (target - offrows[s]);
        let total_zeros = gzeros[root] + gzeros[s] + zeros;
        let w = wc + wg;
        let merged_entries = w * (w + 1) / 2 + w * offrows[root];
        let small_child = (wc as usize) < opts.min_width;
        let ratio_ok = merged_entries > 0
            && (total_zeros as f64) / (merged_entries as f64) <= opts.fill_ratio;
        if !(ratio_ok && (small_child || zeros == 0)) {
            continue;
        }
        absorbed_into[s] = root as u32;
        gwidth[root] = w;
        gfirst[root] = part.ptr[s].min(gfirst[s]);
        gzeros[root] = total_zeros;
    }

    // Emit boundaries where the resolved group changes (groups are
    // contiguous by the adjacency requirement).
    let mut group = vec![0u32; ns];
    for s in 0..ns {
        group[s] = find(&absorbed_into, s) as u32;
    }
    let mut ptr: Vec<u32> = vec![0];
    let mut roots: Vec<u32> = vec![group[0]];
    for s in 1..ns {
        if group[s] != group[s - 1] {
            ptr.push(part.ptr[s]);
            roots.push(group[s]);
        }
    }
    ptr.push(part.ptr[ns]);

    // Map old supernode → new index through its group root.
    let ns_new = roots.len();
    let mut new_of_root = vec![u32::MAX; ns];
    for (new_id, &r) in roots.iter().enumerate() {
        new_of_root[r as usize] = new_id as u32;
    }
    let mut parent = vec![NO_PARENT; ns_new];
    let mut new_offrows = vec![0u64; ns_new];
    for (new_id, &r) in roots.iter().enumerate() {
        new_offrows[new_id] = part.offrows[r as usize];
        let p = part.parent[r as usize];
        if p != NO_PARENT {
            let proot = group[p as usize] as usize;
            let pnew = new_of_root[proot];
            if pnew != new_id as u32 {
                parent[new_id] = pnew;
            }
        }
    }
    SupernodePartition {
        ptr,
        parent,
        offrows: new_offrows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{col_counts, etree};
    use pastix_graph::CsrGraph;

    fn dense_clique(n: usize) -> CsrGraph {
        let mut e = Vec::new();
        for i in 0..n as u32 {
            for j in 0..i {
                e.push((i, j));
            }
        }
        CsrGraph::from_edges(n, &e)
    }

    #[test]
    fn clique_is_one_supernode() {
        let g = dense_clique(6);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        assert_eq!(sn.len(), 1);
        assert_eq!(sn.width(0), 6);
        assert_eq!(sn.offrows[0], 0);
        sn.validate(6).unwrap();
    }

    #[test]
    fn path_gives_singletons_or_chains() {
        // Path graph: L is bidiagonal; every column has count 2 except the
        // last. parent(j-1)=j holds, count(j)=count(j-1)-1 fails except at
        // the end, so supernodes are singletons until the tail pair.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        sn.validate(5).unwrap();
        // Last two columns have counts 2,1 → they merge.
        assert_eq!(sn.width(sn.len() - 1), 2);
    }

    #[test]
    fn supernode_of_lookup() {
        let sn = SupernodePartition {
            ptr: vec![0, 3, 5, 9],
            parent: vec![1, 2, NO_PARENT],
            offrows: vec![2, 1, 0],
        };
        sn.validate(9).unwrap();
        assert_eq!(sn.supernode_of(0), 0);
        assert_eq!(sn.supernode_of(2), 0);
        assert_eq!(sn.supernode_of(3), 1);
        assert_eq!(sn.supernode_of(8), 2);
    }

    #[test]
    fn amalgamation_merges_singleton_chain() {
        // A chain of 1-wide supernodes with compatible structure (path
        // tail): amalgamation with a generous ratio should coarsen it.
        let g = CsrGraph::from_edges(8, &(0..7u32).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        let am = amalgamate(
            &sn,
            &AmalgamationOptions {
                fill_ratio: 0.20,
                min_width: 4,
            },
        );
        am.validate(8).unwrap();
        assert!(am.len() < sn.len(), "no merging happened");
    }

    #[test]
    fn amalgamation_with_zero_ratio_is_identity_boundaries() {
        let g = dense_clique(4);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        let am = amalgamate(
            &sn,
            &AmalgamationOptions {
                fill_ratio: 0.20,
                min_width: 64,
            },
        );
        assert_eq!(am.ptr, sn.ptr);
    }

    #[test]
    fn partition_covers_all_columns() {
        let g = CsrGraph::from_edges(10, &[(0, 5), (1, 5), (2, 6), (3, 6), (4, 7), (5, 7), (6, 8), (7, 8), (8, 9)]);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        sn.validate(10).unwrap();
        let total: usize = (0..sn.len()).map(|s| sn.width(s)).sum();
        assert_eq!(total, 10);
    }
}
