//! Column-block splitting (the paper's "block repartitioning").
//!
//! *"The column blocks corresponding to large supernodes are split using
//! the blocking size suitable to achieve BLAS efficiency"* — and, for the
//! 2D distribution of the uppermost supernodes, the splitting is what
//! creates the block grid that FACTOR / BDIV / BMOD tasks operate on.
//!
//! Splitting refines the column partition; every existing block is sliced
//! at the new boundaries of its facing column block, so no symbolic
//! refactorization is needed and the result is exactly the symbol matrix
//! the finer partition would have produced.

use crate::symbol::{Blok, CBlk, SymbolMatrix};

/// Result of [`split_symbol`]: the refined symbol plus the mapping back to
/// the original supernodes.
#[derive(Debug, Clone)]
pub struct SplitSymbol {
    /// The refined symbol matrix.
    pub symbol: SymbolMatrix,
    /// For each new column block, the original column block it came from.
    pub orig_cblk: Vec<u32>,
    /// For each original column block, the range of new column blocks.
    pub new_range: Vec<(u32, u32)>,
}

/// Splits every column block wider than `max_width` into near-equal chunks
/// of width at most `max_width`.
pub fn split_symbol(sym: &SymbolMatrix, max_width: usize) -> SplitSymbol {
    assert!(max_width >= 1);
    // New column partition boundaries.
    let mut new_fcols: Vec<u32> = Vec::with_capacity(sym.n_cblks());
    let mut orig_cblk: Vec<u32> = Vec::new();
    let mut new_range: Vec<(u32, u32)> = Vec::with_capacity(sym.n_cblks());
    for (k, cb) in sym.cblks.iter().enumerate() {
        let w = cb.width();
        let chunks = w.div_ceil(max_width);
        let base = w / chunks;
        let extra = w % chunks; // first `extra` chunks get one more column
        let lo = new_fcols.len() as u32;
        let mut col = cb.fcol;
        for c in 0..chunks {
            let cw = base + usize::from(c < extra);
            new_fcols.push(col);
            orig_cblk.push(k as u32);
            col += cw as u32;
        }
        debug_assert_eq!(col, cb.lcol + 1);
        new_range.push((lo, new_fcols.len() as u32));
    }
    let nsn = new_fcols.len();
    // End columns.
    let end_col = |t: usize| -> u32 {
        if t + 1 < nsn {
            new_fcols[t + 1] - 1
        } else {
            (sym.n - 1) as u32
        }
    };
    // Column → new cblk map.
    let mut new_of_col = vec![0u32; sym.n];
    for t in 0..nsn {
        for j in new_fcols[t]..=end_col(t) {
            new_of_col[j as usize] = t as u32;
        }
    }

    let mut cblks: Vec<CBlk> = Vec::with_capacity(nsn);
    let mut bloks: Vec<Blok> = Vec::new();
    for (k, _cb) in sym.cblks.iter().enumerate() {
        let (lo, hi) = new_range[k];
        for t in lo..hi {
            let t = t as usize;
            let fcol = new_fcols[t];
            let lcol = end_col(t);
            let blok_start = bloks.len();
            // Diagonal block of the chunk.
            bloks.push(Blok {
                frow: fcol,
                lrow: lcol,
                fcblk: t as u32,
            });
            // Intra-supernode sub-diagonal blocks: the chunk's columns are
            // dense against every later chunk of the same original cblk.
            for t2 in (t + 1)..hi as usize {
                bloks.push(Blok {
                    frow: new_fcols[t2],
                    lrow: end_col(t2),
                    fcblk: t2 as u32,
                });
            }
            // Original off-diagonal blocks, sliced at the facing cblk's new
            // internal boundaries.
            for b in sym.off_bloks_of(k) {
                let mut r = b.frow;
                while r <= b.lrow {
                    let t2 = new_of_col[r as usize] as usize;
                    let stop = b.lrow.min(end_col(t2));
                    bloks.push(Blok {
                        frow: r,
                        lrow: stop,
                        fcblk: t2 as u32,
                    });
                    r = stop + 1;
                }
            }
            cblks.push(CBlk {
                fcol,
                lcol,
                blok_start,
                blok_end: bloks.len(),
            });
        }
    }
    SplitSymbol {
        symbol: SymbolMatrix {
            n: sym.n,
            cblks,
            bloks,
        },
        orig_cblk,
        new_range,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::etree::{col_counts, etree};
    use crate::supernodes::{amalgamate, fundamental_supernodes, AmalgamationOptions};
    use crate::symbol::block_symbolic;
    use pastix_graph::CsrGraph;

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    fn make_symbol(g: &CsrGraph) -> SymbolMatrix {
        let parent = etree(g);
        let counts = col_counts(g, &parent);
        let sn = fundamental_supernodes(&parent, &counts);
        let am = amalgamate(&sn, &AmalgamationOptions::default());
        block_symbolic(g, &am)
    }

    #[test]
    fn split_preserves_validity_and_nnz() {
        let sym = make_symbol(&grid(8, 8));
        for width in [1, 2, 4, 16, 1000] {
            let split = split_symbol(&sym, width);
            split.symbol.validate().unwrap();
            assert_eq!(split.symbol.nnz().nnz_offdiag, sym.nnz().nnz_offdiag, "width {width}");
            // OPC changes (the split adds block granularity but the scalar
            // column structure is identical).
            assert!((split.symbol.opc() - sym.opc()).abs() < 1e-9);
        }
    }

    #[test]
    fn no_split_when_already_narrow() {
        let sym = make_symbol(&grid(5, 5));
        let maxw = sym.cblks.iter().map(|c| c.width()).max().unwrap();
        let split = split_symbol(&sym, maxw);
        assert_eq!(split.symbol.n_cblks(), sym.n_cblks());
        assert_eq!(split.symbol, sym.clone());
    }

    #[test]
    fn widths_bounded_and_balanced() {
        let sym = make_symbol(&grid(10, 10));
        let split = split_symbol(&sym, 3);
        for (t, cb) in split.symbol.cblks.iter().enumerate() {
            assert!(cb.width() <= 3, "cblk {t} too wide");
        }
        // Chunks of one original cblk differ in width by at most 1.
        for &(lo, hi) in &split.new_range {
            let ws: Vec<usize> = (lo..hi).map(|t| split.symbol.cblks[t as usize].width()).collect();
            let mn = *ws.iter().min().unwrap();
            let mx = *ws.iter().max().unwrap();
            assert!(mx - mn <= 1);
        }
    }

    #[test]
    fn orig_mapping_consistent() {
        let sym = make_symbol(&grid(9, 7));
        let split = split_symbol(&sym, 2);
        assert_eq!(split.orig_cblk.len(), split.symbol.n_cblks());
        for (t, &k) in split.orig_cblk.iter().enumerate() {
            let cb_new = &split.symbol.cblks[t];
            let cb_old = &sym.cblks[k as usize];
            assert!(cb_new.fcol >= cb_old.fcol && cb_new.lcol <= cb_old.lcol);
            let (lo, hi) = split.new_range[k as usize];
            assert!((t as u32) >= lo && (t as u32) < hi);
        }
    }

    #[test]
    fn intra_supernode_blocks_are_dense_chain() {
        // A dense clique splits into chunks where chunk t has blocks facing
        // every later chunk, full height.
        let mut e = Vec::new();
        for i in 0..9u32 {
            for j in 0..i {
                e.push((i, j));
            }
        }
        let g = CsrGraph::from_edges(9, &e);
        let sym = make_symbol(&g);
        assert_eq!(sym.n_cblks(), 1);
        let split = split_symbol(&sym, 3);
        split.symbol.validate().unwrap();
        assert_eq!(split.symbol.n_cblks(), 3);
        assert_eq!(split.symbol.bloks_of(0).len(), 3); // diag + 2
        assert_eq!(split.symbol.bloks_of(1).len(), 2);
        assert_eq!(split.symbol.bloks_of(2).len(), 1);
    }
}
