//! # pastix-symbolic
//!
//! The block symbolic factorization phase of the PaStiX reproduction:
//! elimination tree, postordering, column counts, fundamental supernodes,
//! relaxed amalgamation and the block symbol matrix (column blocks with one
//! dense diagonal block and sorted off-diagonal blocks), plus the
//! column-block splitting used by the repartitioning step.
//!
//! [`analyze`] runs the whole phase for a given graph and fill-reducing
//! permutation and returns the final (postordered) permutation together
//! with the symbol matrix and the scalar statistics the paper's Table 1
//! reports.

#![warn(missing_docs)]

pub mod etree;
pub mod split;
pub mod supernodes;
pub mod symbol;

pub use etree::{col_counts, col_counts_par, etree, nnz_l, opc, postorder, NO_PARENT};
pub use split::{split_symbol, SplitSymbol};
pub use supernodes::{amalgamate, fundamental_supernodes, AmalgamationOptions, SupernodePartition};
pub use symbol::{block_symbolic, block_symbolic_par, Blok, CBlk, SymbolMatrix, SymbolNnz, SymbolShape};

use pastix_graph::{CsrGraph, Parallelism, Permutation};

/// Options of the symbolic analysis.
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Relaxed amalgamation knobs.
    pub amalgamation: AmalgamationOptions,
    /// Parallelism of the column-count and block-symbolic passes. Never
    /// changes the symbol — only wall-clock time.
    pub parallelism: Parallelism,
}

/// Output of [`analyze`].
#[derive(Debug, Clone)]
pub struct Analysis {
    /// The final permutation: the input ordering composed with the etree
    /// postorder (postordering preserves fill and makes supernodes
    /// contiguous).
    pub perm: Permutation,
    /// Supernode partition after amalgamation.
    pub partition: SupernodePartition,
    /// Block structure of the factor.
    pub symbol: SymbolMatrix,
    /// Scalar factor statistics **before** amalgamation — the exact values
    /// the paper's Table 1 reports ("the values of the metrics come from
    /// scalar column symbolic factorization").
    pub scalar_nnz_offdiag: u64,
    /// Scalar operation count (`(c_j + 1)²` convention).
    pub scalar_opc: f64,
}

/// Runs the symbolic phase: postorders the elimination tree, detects and
/// amalgamates supernodes, and computes the block symbolic factorization.
///
/// ```
/// use pastix_graph::{CsrGraph, Permutation};
/// use pastix_symbolic::{analyze, AnalysisOptions};
/// let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
/// let a = analyze(&g, &Permutation::identity(5), &AnalysisOptions::default());
/// a.symbol.validate().unwrap();
/// // A path graph fills in nothing: NNZ_L equals the edge count.
/// assert_eq!(a.scalar_nnz_offdiag, 4);
/// ```
pub fn analyze(g: &CsrGraph, ordering: &Permutation, opts: &AnalysisOptions) -> Analysis {
    assert_eq!(g.n(), ordering.len());
    // Permute, compute etree, postorder, and re-permute so supernodes are
    // contiguous column ranges.
    let gp0 = g.permuted(ordering);
    let parent0 = etree(&gp0);
    let post = postorder(&parent0);
    let perm = ordering.then(&post);
    let gp = g.permuted(&perm);
    let parent = etree(&gp);
    let threads = opts.parallelism.effective_threads();
    let counts = col_counts_par(&gp, &parent, threads);
    // The scalar Table-1 statistics and the supernode chain both depend
    // only on `counts` — overlap them when threads are available.
    let compute_stats = || {
        let (_, off) = nnz_l(&counts);
        (off, opc(&counts))
    };
    let compute_partition = || {
        let fund = fundamental_supernodes(&parent, &counts);
        amalgamate(&fund, &opts.amalgamation)
    };
    let ((scalar_nnz_offdiag, scalar_opc), partition) = if threads > 1 {
        rayon::join(compute_stats, compute_partition)
    } else {
        (compute_stats(), compute_partition())
    };
    let symbol = block_symbolic_par(&gp, &partition, threads);
    Analysis {
        perm,
        partition,
        symbol,
        scalar_nnz_offdiag,
        scalar_opc,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::CsrGraph;

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    #[test]
    fn analyze_identity_ordering() {
        let g = grid(6, 6);
        let a = analyze(&g, &Permutation::identity(36), &AnalysisOptions::default());
        assert!(a.perm.validate());
        a.symbol.validate().unwrap();
        a.partition.validate(36).unwrap();
        // Amalgamated block NNZ is >= scalar NNZ (padding only adds).
        assert!(a.symbol.nnz().nnz_offdiag >= a.scalar_nnz_offdiag);
    }

    #[test]
    fn postorder_composition_preserves_fill() {
        // The scalar NNZ under `analyze` (which postorders) must equal the
        // scalar NNZ of the raw ordering: postordering is fill-invariant.
        let g = grid(7, 5);
        let id_perm = Permutation::identity(35);
        let gp = g.permuted(&id_perm);
        let parent = etree(&gp);
        let counts = col_counts(&gp, &parent);
        let (_, raw_off) = nnz_l(&counts);
        let a = analyze(&g, &id_perm, &AnalysisOptions::default());
        assert_eq!(a.scalar_nnz_offdiag, raw_off);
    }

    #[test]
    fn amalgamation_reduces_cblk_count() {
        let g = grid(12, 12);
        let loose = analyze(
            &g,
            &Permutation::identity(144),
            &AnalysisOptions {
                amalgamation: AmalgamationOptions { fill_ratio: 0.3, min_width: 16 },
                ..Default::default()
            },
        );
        let strict = analyze(
            &g,
            &Permutation::identity(144),
            &AnalysisOptions {
                amalgamation: AmalgamationOptions { fill_ratio: 0.0, min_width: 0 },
                ..Default::default()
            },
        );
        assert!(loose.symbol.n_cblks() <= strict.symbol.n_cblks());
        assert!(loose.symbol.nnz().nnz_offdiag >= strict.symbol.nnz().nnz_offdiag);
    }
}
