//! Property-based tests of the symbolic phase on random graphs: the block
//! structures must agree exactly with the scalar symbolic factorization,
//! and every transformation (amalgamation, splitting) must preserve the
//! documented invariants.

use pastix_graph::CsrGraph;
use pastix_symbolic::{
    amalgamate, block_symbolic, col_counts, etree, fundamental_supernodes, opc, postorder,
    split_symbol, AmalgamationOptions, NO_PARENT,
};
use proptest::prelude::*;

fn random_graph(n: usize, edges: Vec<(u32, u32)>) -> CsrGraph {
    let edges: Vec<(u32, u32)> = edges
        .into_iter()
        .map(|(u, v)| (u % n as u32, v % n as u32))
        .filter(|(u, v)| u != v)
        .collect();
    CsrGraph::from_edges(n, &edges)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn block_structure_is_exact_on_fundamental_partition(
        n in 2usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
    ) {
        let g0 = random_graph(n, edges);
        // Postorder so supernodes are contiguous.
        let parent0 = etree(&g0);
        let post = postorder(&parent0);
        let g = g0.permuted(&post);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let part = fundamental_supernodes(&parent, &counts);
        part.validate(n).unwrap();
        let sym = block_symbolic(&g, &part);
        sym.validate().unwrap();
        // Exactness: block NNZ_L == scalar NNZ_L and OPC matches.
        let scalar_off: u64 = counts.iter().map(|&c| c - 1).sum();
        prop_assert_eq!(sym.nnz().nnz_offdiag, scalar_off);
        prop_assert!((sym.opc() - opc(&counts)).abs() < 1e-6 * opc(&counts).max(1.0));
    }

    #[test]
    fn amalgamation_only_pads(
        n in 2usize..40,
        edges in prop::collection::vec((0u32..40, 0u32..40), 0..120),
        ratio in 0.0f64..0.5,
        min_width in 1usize..12,
    ) {
        let g0 = random_graph(n, edges);
        let parent0 = etree(&g0);
        let post = postorder(&parent0);
        let g = g0.permuted(&post);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let fund = fundamental_supernodes(&parent, &counts);
        let am = amalgamate(&fund, &AmalgamationOptions { fill_ratio: ratio, min_width });
        am.validate(n).unwrap();
        prop_assert!(am.len() <= fund.len());
        let sym_f = block_symbolic(&g, &fund);
        let sym_a = block_symbolic(&g, &am);
        sym_a.validate().unwrap();
        // Amalgamation can only add explicit zeros (the per-merge ratio is
        // checked at merge time; across chained merges the ratios compound,
        // so no tight global bound exists — monotonicity is the invariant).
        prop_assert!(sym_a.nnz().nnz_offdiag >= sym_f.nnz().nnz_offdiag);
        // With a zero ratio and min_width 1 nothing would merge; in general
        // the padded structure still loses nothing of the original.
        prop_assert!(sym_a.nnz().stored_entries >= sym_f.nnz().nnz_offdiag);
    }

    #[test]
    fn splitting_preserves_structure(
        n in 2usize..35,
        edges in prop::collection::vec((0u32..35, 0u32..35), 0..100),
        width in 1usize..8,
    ) {
        let g0 = random_graph(n, edges);
        let parent0 = etree(&g0);
        let post = postorder(&parent0);
        let g = g0.permuted(&post);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let fund = fundamental_supernodes(&parent, &counts);
        let am = amalgamate(&fund, &AmalgamationOptions::default());
        let sym = block_symbolic(&g, &am);
        let split = split_symbol(&sym, width);
        split.symbol.validate().unwrap();
        prop_assert_eq!(split.symbol.nnz().nnz_offdiag, sym.nnz().nnz_offdiag);
        prop_assert!((split.symbol.opc() - sym.opc()).abs() < 1e-6 * sym.opc().max(1.0));
        for cb in &split.symbol.cblks {
            prop_assert!(cb.width() <= width);
        }
    }

    #[test]
    fn block_etree_consistent_with_scalar_etree(
        n in 2usize..30,
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..80),
    ) {
        let g0 = random_graph(n, edges);
        let parent0 = etree(&g0);
        let post = postorder(&parent0);
        let g = g0.permuted(&post);
        let parent = etree(&g);
        let counts = col_counts(&g, &parent);
        let part = fundamental_supernodes(&parent, &counts);
        let sym = block_symbolic(&g, &part);
        let bt = sym.block_etree();
        // The supernode of parent(last col of s) must be the block parent.
        for (s, &bp) in bt.iter().enumerate() {
            let last = sym.cblks[s].lcol as usize;
            match parent[last] {
                NO_PARENT => prop_assert_eq!(bp, NO_PARENT),
                p => prop_assert_eq!(bp as usize, sym.cblk_of_col(p as usize)),
            }
        }
    }
}
