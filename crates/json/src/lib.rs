//! # pastix-json
//!
//! A small, dependency-free JSON value type with a strict parser and a
//! pretty printer. The machine model and BLAS time model persist
//! themselves through this crate (the workspace builds in offline
//! containers, so `serde`/`serde_json` are not available).
//!
//! Numbers are held as `f64`; Rust's shortest-roundtrip float printing
//! guarantees save/load fixpoints at full precision.

#![warn(missing_docs)]

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// Parse or conversion failure, with a human-oriented message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError(msg.into()))
}

impl Json {
    /// Parses a JSON document (must consume the full input).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Required object field, as an error otherwise.
    pub fn field(&self, key: &str) -> Result<&Json, JsonError> {
        self.get(key)
            .ok_or_else(|| JsonError(format!("missing field `{key}`")))
    }

    /// Numeric value.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(x) => Ok(*x),
            other => err(format!("expected number, got {other:?}")),
        }
    }

    /// Non-negative integer value (checked).
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        let x = self.as_f64()?;
        if x < 0.0 || x.fract() != 0.0 || x > u64::MAX as f64 {
            return err(format!("expected non-negative integer, got {x}"));
        }
        Ok(x as usize)
    }

    /// String value.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => err(format!("expected string, got {other:?}")),
        }
    }

    /// Array value.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(v) => Ok(v),
            other => err(format!("expected array, got {other:?}")),
        }
    }

    /// Fixed-size `f64` array.
    pub fn as_f64_array<const N: usize>(&self) -> Result<[f64; N], JsonError> {
        let arr = self.as_arr()?;
        if arr.len() != N {
            return err(format!("expected array of {N} numbers, got {}", arr.len()));
        }
        let mut out = [0.0; N];
        for (o, v) in out.iter_mut().zip(arr) {
            *o = v.as_f64()?;
        }
        Ok(out)
    }

    /// Compact single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        write_value(self, None, 0, &mut out);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        write_value(self, Some(2), 0, &mut out);
        out
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Builds a numeric array.
pub fn num_arr(xs: impl IntoIterator<Item = f64>) -> Json {
    Json::Arr(xs.into_iter().map(Json::Num).collect())
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), JsonError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => err("unexpected end of input"),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-' | b'+')) {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| JsonError("bad utf8".into()))?;
    match text.parse::<f64>() {
        Ok(x) => Ok(Json::Num(x)),
        Err(_) => err(format!("invalid number `{text}` at byte {start}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(b, pos, b'"')?;
    let mut s = String::new();
    loop {
        match b.get(*pos) {
            None => return err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'r') => s.push('\r'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| JsonError("bad utf8".into()))?,
                            16,
                        )
                        .map_err(|_| JsonError("bad \\u escape".into()))?;
                        s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return err("bad escape"),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through byte by byte.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .ok_or_else(|| JsonError("truncated utf8".into()))?;
                s.push_str(std::str::from_utf8(chunk).map_err(|_| JsonError("bad utf8".into()))?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let val = parse_value(b, pos)?;
        fields.push((key, val));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------

fn write_value(v: &Json, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(x) => write_num(*x, out),
        Json::Str(s) => write_string(s, out),
        Json::Arr(items) => write_seq(out, indent, depth, b'[', items.len(), |out, i, d| {
            write_value(&items[i], indent, d, out)
        }),
        Json::Obj(fields) => write_seq(out, indent, depth, b'{', fields.len(), |out, i, d| {
            let (k, v) = &fields[i];
            write_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(v, indent, d, out);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: u8,
    n: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    let close = if open == b'[' { ']' } else { '}' };
    out.push(open as char);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_num(x: f64, out: &mut String) {
    if x.is_finite() {
        if x == x.trunc() && x.abs() < 1e15 {
            // Integral values print without a fraction; `1.0` JSON-parses
            // back to the same f64 as `1` anyway.
            out.push_str(&format!("{}", x as i64));
        } else {
            // Rust's shortest-roundtrip printing; may use `e` notation,
            // which the parser accepts.
            out.push_str(&format!("{x:e}"));
        }
    } else {
        // JSON has no Inf/NaN; store null (loads as an error, loudly).
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic_document() {
        let v = Json::parse(r#"{"a": 1, "b": [true, null, "x\n"], "c": {"d": -2.5e-3}}"#).unwrap();
        assert_eq!(v.field("a").unwrap().as_f64().unwrap(), 1.0);
        let arr = v.field("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::Bool(true));
        assert_eq!(arr[1], Json::Null);
        assert_eq!(arr[2].as_str().unwrap(), "x\n");
        assert_eq!(v.field("c").unwrap().field("d").unwrap().as_f64().unwrap(), -2.5e-3);
    }

    #[test]
    fn roundtrip_floats_exactly() {
        for x in [0.0, 1.0, -1.5, 1.0 / 3.0, 40e-6, 3.5e7, f64::MIN_POSITIVE, 1e300] {
            let v = Json::Num(x);
            for text in [v.compact(), v.pretty()] {
                let back = Json::parse(&text).unwrap().as_f64().unwrap();
                assert_eq!(back, x, "through {text}");
            }
        }
    }

    #[test]
    fn roundtrip_structures() {
        let v = obj([
            ("name", Json::Str("sp2 \"thin\"".into())),
            ("coef", num_arr([1e-6, 2e-9, 0.0])),
            ("nested", obj([("k", Json::Num(64.0))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
        assert_eq!(Json::parse(&v.compact()).unwrap(), v);
    }

    #[test]
    fn missing_field_and_type_errors() {
        let v = Json::parse(r#"{"a": "s"}"#).unwrap();
        assert!(v.field("b").is_err());
        assert!(v.field("a").unwrap().as_f64().is_err());
        assert!(v.field("a").unwrap().as_str().is_ok());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn as_usize_checks_integrality() {
        assert_eq!(Json::Num(8.0).as_usize().unwrap(), 8);
        assert!(Json::Num(-1.0).as_usize().is_err());
        assert!(Json::Num(1.5).as_usize().is_err());
    }

    #[test]
    fn fixed_array_extraction() {
        let v = num_arr([1.0, 2.0, 3.0]);
        assert_eq!(v.as_f64_array::<3>().unwrap(), [1.0, 2.0, 3.0]);
        assert!(v.as_f64_array::<4>().is_err());
    }
}
