//! Nested dissection driver.
//!
//! Implements the paper's ordering phase: *"a tight coupling of the Nested
//! Dissection and Approximate Minimum Degree algorithms; the partition of
//! the original graph into supernodes is achieved by merging the partition
//! of separators computed by the Nested Dissection algorithm and the
//! supernodes amalgamated for each subgraph ordered by Halo Approximate
//! Minimum Degree"*.
//!
//! The driver recursively bisects the graph with a vertex separator
//! ([`crate::bisect`]), numbers the two halves first and the separator
//! last, and switches to (halo) minimum degree on subgraphs below the leaf
//! threshold. The two sibling subtrees are independent and ordered in
//! parallel with `rayon::join` — the natural fork-join shape of nested
//! dissection. The supernode partition itself is recovered afterwards by
//! the symbolic phase (fundamental supernodes + amalgamation), which merges
//! the separator supernodes and the leaf supernodes exactly as the paper
//! describes.

use crate::bisect::{vertex_separator, BisectOptions};
use crate::md::min_degree;
use pastix_graph::par::par_chunks_mut;
use pastix_graph::{CsrGraph, Parallelism, Permutation};

/// How leaf subgraphs (below the dissection threshold) are ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafMode {
    /// Halo minimum degree — the "Scotch-like" coupling of the paper: the
    /// separator vertices adjacent to the subgraph participate in degrees.
    HaloMinDegree,
    /// Plain minimum degree, blind to the halo — the "MeTiS-like" variant
    /// used to reproduce Table 1's second metric set.
    MinDegree,
    /// No reordering of leaves (debug/reference only).
    Natural,
}

/// Options of the nested dissection ordering.
#[derive(Debug, Clone)]
pub struct OrderingOptions {
    /// Subgraphs at or below this size are ordered by the leaf algorithm.
    pub leaf_size: usize,
    /// Leaf ordering algorithm.
    pub leaf_mode: LeafMode,
    /// Bisection knobs.
    pub bisect: BisectOptions,
    /// Parallelism of the dissection recursion and the leaf min-degree
    /// frontier. Never changes the ordering — only wall-clock time.
    pub parallelism: Parallelism,
}

impl Default for OrderingOptions {
    fn default() -> Self {
        Self {
            leaf_size: 120,
            leaf_mode: LeafMode::HaloMinDegree,
            bisect: BisectOptions::default(),
            parallelism: Parallelism::Auto,
        }
    }
}

impl OrderingOptions {
    /// The paper's PaStiX-side ordering (Scotch-like: ND + Halo-MD).
    pub fn scotch_like() -> Self {
        Self::default()
    }

    /// The paper's PSPASES-side ordering (MeTiS-like: ND + plain MD).
    pub fn metis_like() -> Self {
        Self {
            leaf_mode: LeafMode::MinDegree,
            ..Self::default()
        }
    }
}

/// Computes a fill-reducing ordering of `g` by nested dissection.
///
/// ```
/// use pastix_graph::CsrGraph;
/// use pastix_ordering::{nested_dissection, OrderingOptions};
/// // A 6x6 grid graph.
/// let mut e = Vec::new();
/// for y in 0..6u32 {
///     for x in 0..6u32 {
///         if x + 1 < 6 { e.push((x + 6 * y, x + 1 + 6 * y)); }
///         if y + 1 < 6 { e.push((x + 6 * y, x + 6 * (y + 1))); }
///     }
/// }
/// let g = CsrGraph::from_edges(36, &e);
/// let perm = nested_dissection(&g, &OrderingOptions::scotch_like());
/// assert!(perm.validate());
/// ```
pub fn nested_dissection(g: &CsrGraph, opts: &OrderingOptions) -> Permutation {
    let n = g.n();
    let threads = opts.parallelism.effective_threads();
    let verts: Vec<u32> = (0..n as u32).collect();
    let mut perm = vec![0u32; n];
    // Phase 1: dissect. The recursion numbers separators and collects the
    // leaf frontier (each leaf owning a disjoint slice of `perm`) instead
    // of ordering leaves inline.
    let mut jobs = Vec::new();
    recurse(g, verts, &mut perm, opts, 0, opts.bisect.seed, threads, &mut jobs);
    // Phase 2: order the whole leaf frontier. Leaves are independent and
    // write disjoint slices, so chunking the job list across threads
    // reproduces the sequential result bitwise.
    par_chunks_mut(threads, &mut jobs, |chunk, _| {
        for job in chunk {
            order_leaf(g, &job.verts, job.out, opts.leaf_mode);
        }
    });
    drop(jobs);
    Permutation::from_perm(perm)
}

/// Pure (halo-free) minimum degree over the whole graph; the classical
/// single-strategy baseline used by the ordering comparison example.
pub fn pure_min_degree(g: &CsrGraph) -> Permutation {
    let halo = vec![false; g.n()];
    let o = min_degree(g, &halo);
    Permutation::from_perm(o.order)
}

/// A leaf of the dissection tree, deferred to phase 2: the vertices to
/// order and the (disjoint) slice of the permutation they fill.
struct LeafJob<'a> {
    verts: Vec<u32>,
    out: &'a mut [u32],
}

#[allow(clippy::too_many_arguments)]
fn recurse<'a>(
    g0: &CsrGraph,
    verts: Vec<u32>,
    out: &'a mut [u32],
    opts: &OrderingOptions,
    depth: usize,
    seed: u64,
    threads: usize,
    jobs: &mut Vec<LeafJob<'a>>,
) {
    debug_assert_eq!(verts.len(), out.len());
    let nv = verts.len();
    if nv == 0 {
        return;
    }
    if nv <= opts.leaf_size || depth >= 60 {
        jobs.push(LeafJob { verts, out });
        return;
    }
    let sub = g0.induced_subgraph(&verts);
    let mut bopts = opts.bisect.clone();
    // Decorrelate sibling seeds deterministically.
    bopts.seed = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(depth as u64)
        .wrapping_add(verts[0] as u64);
    let sep = vertex_separator(&sub, &bopts);
    if sep.counts[0] == 0 || sep.counts[1] == 0 {
        // Degenerate split (tiny or pathological graph): stop dissecting.
        jobs.push(LeafJob { verts, out });
        return;
    }
    let mut v0 = Vec::with_capacity(sep.counts[0]);
    let mut v1 = Vec::with_capacity(sep.counts[1]);
    let mut vs = Vec::with_capacity(sep.counts[2]);
    for (loc, &gid) in verts.iter().enumerate() {
        match sep.side[loc] {
            0 => v0.push(gid),
            1 => v1.push(gid),
            _ => vs.push(gid),
        }
    }
    let (n0, n1) = (v0.len(), v1.len());
    let (halves, out_sep) = out.split_at_mut(n0 + n1);
    let (out0, out1) = halves.split_at_mut(n0);
    // Separator vertices are numbered last, in natural order.
    out_sep.copy_from_slice(&vs);

    let seed0 = seed.wrapping_add(1);
    let seed1 = seed.wrapping_add(2);
    // A parallel cutoff keeps join overhead away from small subtrees. Each
    // branch collects its own job list; concatenating side-0 then side-1
    // keeps the frontier order identical to the sequential recursion.
    if threads > 1 && n0.min(n1) > 2048 {
        let (j0, j1) = rayon::join(
            || {
                let mut j = Vec::new();
                recurse(g0, v0, out0, opts, depth + 1, seed0, threads, &mut j);
                j
            },
            || {
                let mut j = Vec::new();
                recurse(g0, v1, out1, opts, depth + 1, seed1, threads, &mut j);
                j
            },
        );
        jobs.extend(j0);
        jobs.extend(j1);
    } else {
        recurse(g0, v0, out0, opts, depth + 1, seed0, threads, jobs);
        recurse(g0, v1, out1, opts, depth + 1, seed1, threads, jobs);
    }
}

/// Orders a leaf subgraph, writing global ids in elimination order.
fn order_leaf(g0: &CsrGraph, verts: &[u32], out: &mut [u32], mode: LeafMode) {
    match mode {
        LeafMode::Natural => out.copy_from_slice(verts),
        LeafMode::MinDegree => {
            let sub = g0.induced_subgraph(verts);
            let halo = vec![false; verts.len()];
            let o = min_degree(&sub, &halo);
            for (r, &loc) in o.order.iter().enumerate() {
                out[r] = verts[loc as usize];
            }
        }
        LeafMode::HaloMinDegree => {
            // Halo = outside neighbors of the leaf (separator vertices of
            // some ancestor, eliminated after every leaf vertex).
            let mut in_leaf = std::collections::HashSet::with_capacity(verts.len());
            for &v in verts {
                in_leaf.insert(v);
            }
            let mut halo_ids: Vec<u32> = Vec::new();
            for &v in verts {
                for &u in g0.neighbors(v as usize) {
                    if !in_leaf.contains(&u) {
                        halo_ids.push(u);
                    }
                }
            }
            halo_ids.sort_unstable();
            halo_ids.dedup();
            // Combined, sorted vertex list for the induced subgraph.
            let mut combined: Vec<u32> = Vec::with_capacity(verts.len() + halo_ids.len());
            let mut is_halo: Vec<bool> = Vec::with_capacity(combined.capacity());
            let (mut i, mut j) = (0, 0);
            while i < verts.len() || j < halo_ids.len() {
                if j >= halo_ids.len() || (i < verts.len() && verts[i] < halo_ids[j]) {
                    combined.push(verts[i]);
                    is_halo.push(false);
                    i += 1;
                } else {
                    combined.push(halo_ids[j]);
                    is_halo.push(true);
                    j += 1;
                }
            }
            let sub = g0.induced_subgraph(&combined);
            let o = min_degree(&sub, &is_halo);
            for (r, &loc) in o.order.iter().enumerate() {
                out[r] = combined[loc as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    #[test]
    fn produces_valid_permutation() {
        let g = grid(20, 20);
        for mode in [LeafMode::HaloMinDegree, LeafMode::MinDegree, LeafMode::Natural] {
            let opts = OrderingOptions {
                leaf_mode: mode,
                leaf_size: 30,
                ..Default::default()
            };
            let p = nested_dissection(&g, &opts);
            assert!(p.validate(), "invalid permutation for {mode:?}");
            assert_eq!(p.len(), 400);
        }
    }

    #[test]
    fn small_graph_falls_through_to_leaf() {
        let g = grid(3, 3);
        let p = nested_dissection(&g, &OrderingOptions::default());
        assert!(p.validate());
    }

    #[test]
    fn empty_and_single() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = nested_dissection(&g, &OrderingOptions::default());
        assert_eq!(p.len(), 0);
        let g1 = CsrGraph::from_edges(1, &[]);
        let p1 = nested_dissection(&g1, &OrderingOptions::default());
        assert_eq!(p1.len(), 1);
    }

    #[test]
    fn deterministic_sequential_vs_parallel() {
        let g = grid(30, 30);
        let mut o1 = OrderingOptions::default();
        o1.leaf_size = 40;
        o1.parallelism = Parallelism::Sequential;
        let p1 = nested_dissection(&g, &o1);
        for t in [2usize, 4, 7] {
            let mut o2 = o1.clone();
            o2.parallelism = Parallelism::Threads(t);
            let p2 = nested_dissection(&g, &o2);
            assert_eq!(p1.perm(), p2.perm(), "threads={t}");
        }
    }

    #[test]
    fn pure_md_is_valid() {
        let g = grid(12, 12);
        let p = pure_min_degree(&g);
        assert!(p.validate());
    }

    #[test]
    fn disconnected_graph_ordered_fully() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (2, 3), (3, 4)]);
        let p = nested_dissection(&g, &OrderingOptions::default());
        assert!(p.validate());
        assert_eq!(p.len(), 7);
    }

    #[test]
    fn separator_vertices_numbered_after_halves() {
        // On a 2D grid with a forced top-level split, the last-numbered
        // vertices should (mostly) form the top separator. We can't observe
        // the separator directly through the public API, but we can check
        // the ND signature: the very last vertex's neighbors in the graph
        // span both "sides" of the ordering, i.e. fill-reducing structure.
        // Weak but meaningful sanity: orderings differ from natural.
        let g = grid(16, 16);
        let p = nested_dissection(&g, &OrderingOptions { leaf_size: 16, ..Default::default() });
        assert!(p.validate());
        let natural: Vec<u32> = (0..256).collect();
        assert_ne!(p.perm(), &natural[..]);
    }
}
