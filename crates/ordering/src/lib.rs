//! # pastix-ordering
//!
//! The ordering phase of the PaStiX reproduction: a tight coupling of
//! nested dissection (multilevel vertex separators, the Scotch substitute)
//! with (halo) minimum degree on the leaf subgraphs, as in
//! Pellegrini–Roman–Amestoy and the PaStiX paper.
//!
//! Entry points: [`nested_dissection`] with [`OrderingOptions::scotch_like`]
//! (PaStiX side) or [`OrderingOptions::metis_like`] (PSPASES side), and the
//! lower-level pieces [`bisect`] and [`md`] for direct use.

#![warn(missing_docs)]

pub mod bisect;
pub mod md;
pub mod nd;
pub mod rcm;

pub use bisect::{edge_bisection, separator_is_valid, vertex_separator, BisectOptions, SeparatorResult};
pub use md::{min_degree, MdOrder};
pub use nd::{nested_dissection, pure_min_degree, LeafMode, OrderingOptions};
pub use rcm::{bandwidth, reverse_cuthill_mckee};
