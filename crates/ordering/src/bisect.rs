//! Multilevel graph bisection and vertex separators.
//!
//! The Scotch substitute: a classical multilevel scheme — heavy-edge
//! matching coarsening, greedy graph-growing initial bisection, boundary
//! FM refinement on the way back up — followed by vertex-separator
//! extraction from the edge cut via a König vertex cover (maximum bipartite
//! matching on the cut edges). Used by the nested dissection driver.

use pastix_graph::CsrGraph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the bisection.
#[derive(Debug, Clone)]
pub struct BisectOptions {
    /// Coarsening stops below this many vertices.
    pub coarse_target: usize,
    /// Maximum accepted imbalance `max(|P0|,|P1|) / (total/2)`.
    pub imbalance: f64,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// RNG seed (matching order and tie-breaking).
    pub seed: u64,
}

impl Default for BisectOptions {
    fn default() -> Self {
        Self {
            coarse_target: 64,
            imbalance: 1.10,
            refine_passes: 4,
            seed: 0x5EED,
        }
    }
}

/// Result of [`vertex_separator`]: a partition of the vertices into the
/// separator and two (possibly empty) halves.
#[derive(Debug, Clone)]
pub struct SeparatorResult {
    /// 0 or 1 for the halves, 2 for the separator.
    pub side: Vec<u8>,
    /// Vertex counts per side `[|P0|, |P1|, |S|]`.
    pub counts: [usize; 3],
}

/// Weighted graph used internally during coarsening.
#[derive(Clone)]
struct WGraph {
    xadj: Vec<usize>,
    adjncy: Vec<u32>,
    /// Edge weights parallel to `adjncy`.
    ewgt: Vec<u32>,
    /// Vertex weights.
    vwgt: Vec<u32>,
}

impl WGraph {
    fn from_csr(g: &CsrGraph) -> Self {
        WGraph {
            xadj: g.xadj().to_vec(),
            adjncy: g.adjncy().to_vec(),
            ewgt: vec![1; g.n_adj()],
            vwgt: vec![1; g.n()],
        }
    }

    fn n(&self) -> usize {
        self.vwgt.len()
    }

    fn total_vwgt(&self) -> u64 {
        self.vwgt.iter().map(|&w| w as u64).sum()
    }

    fn neighbors(&self, u: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adjncy[self.xadj[u]..self.xadj[u + 1]]
            .iter()
            .copied()
            .zip(self.ewgt[self.xadj[u]..self.xadj[u + 1]].iter().copied())
    }
}

/// Computes an edge bisection of `g`: returns `part[v] ∈ {0, 1}`.
pub fn edge_bisection(g: &CsrGraph, opts: &BisectOptions) -> Vec<u8> {
    let wg = WGraph::from_csr(g);
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    multilevel(&wg, opts, &mut rng, 0)
}

fn multilevel(wg: &WGraph, opts: &BisectOptions, rng: &mut SmallRng, depth: usize) -> Vec<u8> {
    let n = wg.n();
    if n <= opts.coarse_target || depth > 64 {
        let mut part = initial_bisection(wg, rng);
        refine(wg, &mut part, opts);
        return part;
    }
    // Heavy-edge matching.
    let (coarse, map) = coarsen(wg, rng);
    if coarse.n() as f64 > n as f64 * 0.95 {
        // Coarsening stalled (e.g. star graphs) — bisect directly.
        let mut part = initial_bisection(wg, rng);
        refine(wg, &mut part, opts);
        return part;
    }
    let coarse_part = multilevel(&coarse, opts, rng, depth + 1);
    // Project and refine.
    let mut part: Vec<u8> = (0..n).map(|v| coarse_part[map[v] as usize]).collect();
    refine(wg, &mut part, opts);
    part
}

/// Heavy-edge matching coarsening; returns the coarse graph and the
/// fine→coarse vertex map.
fn coarsen(wg: &WGraph, rng: &mut SmallRng) -> (WGraph, Vec<u32>) {
    let n = wg.n();
    let mut match_of = vec![u32::MAX; n];
    let mut visit: Vec<u32> = (0..n as u32).collect();
    // Random visiting order decorrelates the matching from the numbering.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        visit.swap(i, j);
    }
    let mut n_coarse = 0u32;
    let mut coarse_id = vec![u32::MAX; n];
    for &u in &visit {
        let u = u as usize;
        if match_of[u] != u32::MAX {
            continue;
        }
        // Heaviest unmatched neighbor.
        let mut best = u32::MAX;
        let mut best_w = 0u32;
        for (v, w) in wg.neighbors(u) {
            if match_of[v as usize] == u32::MAX && v as usize != u && w > best_w {
                best = v;
                best_w = w;
            }
        }
        if best != u32::MAX {
            match_of[u] = best;
            match_of[best as usize] = u as u32;
            coarse_id[u] = n_coarse;
            coarse_id[best as usize] = n_coarse;
        } else {
            match_of[u] = u as u32;
            coarse_id[u] = n_coarse;
        }
        n_coarse += 1;
    }
    // Build the coarse graph by accumulating edge weights.
    let nc = n_coarse as usize;
    let mut vwgt = vec![0u32; nc];
    for v in 0..n {
        vwgt[coarse_id[v] as usize] += wg.vwgt[v];
    }
    let mut xadj = vec![0usize; nc + 1];
    let mut adjncy: Vec<u32> = Vec::new();
    let mut ewgt: Vec<u32> = Vec::new();
    let mut accum: Vec<u32> = vec![u32::MAX; nc]; // coarse nbr -> slot
    // Group fine vertices by coarse id.
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); nc];
    for v in 0..n {
        members[coarse_id[v] as usize].push(v as u32);
    }
    for c in 0..nc {
        let start = adjncy.len();
        for &v in &members[c] {
            for (u, w) in wg.neighbors(v as usize) {
                let cu = coarse_id[u as usize] as usize;
                if cu == c {
                    continue;
                }
                if accum[cu] == u32::MAX || (accum[cu] as usize) < start {
                    accum[cu] = adjncy.len() as u32;
                    adjncy.push(cu as u32);
                    ewgt.push(w);
                } else {
                    ewgt[accum[cu] as usize] += w;
                }
            }
        }
        xadj[c + 1] = adjncy.len();
    }
    (
        WGraph {
            xadj,
            adjncy,
            ewgt,
            vwgt,
        },
        coarse_id,
    )
}

/// Greedy graph growing from a pseudo-peripheral seed: grow region 0 until
/// it holds half the vertex weight.
fn initial_bisection(wg: &WGraph, rng: &mut SmallRng) -> Vec<u8> {
    let n = wg.n();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![0];
    }
    let total = wg.total_vwgt();
    let target = total / 2;
    // BFS from a random seed twice to approximate a peripheral vertex.
    let seed0 = rng.gen_range(0..n);
    let far = bfs_far(wg, seed0);
    let mut part = vec![1u8; n];
    let mut grown: u64 = 0;
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; n];
    queue.push_back(far as u32);
    seen[far] = true;
    while grown < target {
        let u = match queue.pop_front() {
            Some(u) => u as usize,
            None => {
                // Disconnected: restart from any unassigned vertex.
                match (0..n).find(|&v| !seen[v]) {
                    Some(v) => {
                        seen[v] = true;
                        queue.push_back(v as u32);
                        continue;
                    }
                    None => break,
                }
            }
        };
        part[u] = 0;
        grown += wg.vwgt[u] as u64;
        for (v, _) in wg.neighbors(u) {
            if !seen[v as usize] {
                seen[v as usize] = true;
                queue.push_back(v);
            }
        }
    }
    part
}

fn bfs_far(wg: &WGraph, seed: usize) -> usize {
    let n = wg.n();
    let mut level = vec![u32::MAX; n];
    let mut q = std::collections::VecDeque::new();
    level[seed] = 0;
    q.push_back(seed as u32);
    let mut last = seed;
    while let Some(u) = q.pop_front() {
        last = u as usize;
        for (v, _) in wg.neighbors(u as usize) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u as usize] + 1;
                q.push_back(v);
            }
        }
    }
    last
}

/// Boundary FM refinement: repeated single passes moving the best-gain
/// movable boundary vertex, with weight-balance guardrails.
fn refine(wg: &WGraph, part: &mut [u8], opts: &BisectOptions) {
    let n = wg.n();
    let total = wg.total_vwgt();
    let max_side = ((total as f64 / 2.0) * opts.imbalance).ceil() as u64;
    let mut side_w = [0u64; 2];
    for v in 0..n {
        side_w[part[v] as usize] += wg.vwgt[v] as u64;
    }
    for _ in 0..opts.refine_passes {
        let mut moved_any = false;
        // Gain of moving v to the other side: cut decrease.
        for v in 0..n {
            let from = part[v] as usize;
            let to = 1 - from;
            if side_w[to] + wg.vwgt[v] as u64 > max_side {
                continue;
            }
            let mut gain: i64 = 0;
            let mut has_cross = false;
            for (u, w) in wg.neighbors(v) {
                if part[u as usize] as usize == from {
                    gain -= w as i64;
                } else {
                    gain += w as i64;
                    has_cross = true;
                }
            }
            if has_cross && gain > 0 {
                part[v] = to as u8;
                side_w[from] -= wg.vwgt[v] as u64;
                side_w[to] += wg.vwgt[v] as u64;
                moved_any = true;
            }
        }
        if !moved_any {
            break;
        }
    }
    // Keep both sides non-empty when possible.
    if side_w[0] == 0 || side_w[1] == 0 {
        let empty = if side_w[0] == 0 { 0 } else { 1 };
        if let Some(v) = (0..n).min_by_key(|&v| wg.vwgt[v]) {
            part[v] = empty as u8;
        }
    }
}

/// Computes a vertex separator of `g` from an edge bisection: the boundary
/// cut edges form a bipartite graph; a minimum vertex cover of that graph
/// (König, via maximum matching) is a vertex separator no larger than the
/// boundary of either side.
pub fn vertex_separator(g: &CsrGraph, opts: &BisectOptions) -> SeparatorResult {
    let n = g.n();
    let part = edge_bisection(g, opts);
    let mut side: Vec<u8> = part.clone();

    // Boundary vertices on each side.
    let mut b0: Vec<u32> = Vec::new();
    let mut b1: Vec<u32> = Vec::new();
    let mut idx0 = vec![u32::MAX; n];
    let mut idx1 = vec![u32::MAX; n];
    for v in 0..n {
        let pv = part[v];
        let crosses = g.neighbors(v).iter().any(|&u| part[u as usize] != pv);
        if crosses {
            if pv == 0 {
                idx0[v] = b0.len() as u32;
                b0.push(v as u32);
            } else {
                idx1[v] = b1.len() as u32;
                b1.push(v as u32);
            }
        }
    }

    // Maximum bipartite matching (Hungarian augmenting paths) between b0
    // and b1 over the cut edges.
    let adj0: Vec<Vec<u32>> = b0
        .iter()
        .map(|&v| {
            g.neighbors(v as usize)
                .iter()
                .copied()
                .filter(|&u| part[u as usize] == 1 && idx1[u as usize] != u32::MAX)
                .map(|u| idx1[u as usize])
                .collect()
        })
        .collect();
    let (match0, match1) = max_bipartite_matching(&adj0, b1.len());

    // König: alternate BFS from unmatched b0 vertices; cover = (b0 not
    // reached) ∪ (b1 reached).
    let mut visited0 = vec![false; b0.len()];
    let mut visited1 = vec![false; b1.len()];
    let mut stack: Vec<u32> = (0..b0.len() as u32).filter(|&i| match0[i as usize] == u32::MAX).collect();
    for &s in &stack {
        visited0[s as usize] = true;
    }
    while let Some(i) = stack.pop() {
        for &j in &adj0[i as usize] {
            if !visited1[j as usize] {
                visited1[j as usize] = true;
                let m = match1[j as usize];
                if m != u32::MAX && !visited0[m as usize] {
                    visited0[m as usize] = true;
                    stack.push(m);
                }
            }
        }
    }
    for (i, &v) in b0.iter().enumerate() {
        if !visited0[i] {
            side[v as usize] = 2;
        }
    }
    for (j, &v) in b1.iter().enumerate() {
        if visited1[j] {
            side[v as usize] = 2;
        }
    }

    let mut counts = [0usize; 3];
    for &s in &side {
        counts[s as usize] += 1;
    }
    SeparatorResult { side, counts }
}

/// Hungarian-augmenting-path maximum matching. `adj0[i]` lists right-side
/// indices adjacent to left vertex `i`. Returns (match of left, match of
/// right), `u32::MAX` for unmatched.
fn max_bipartite_matching(adj0: &[Vec<u32>], n1: usize) -> (Vec<u32>, Vec<u32>) {
    let n0 = adj0.len();
    let mut match0 = vec![u32::MAX; n0];
    let mut match1 = vec![u32::MAX; n1];
    let mut visited = vec![u64::MAX; n1];
    fn augment(
        i: usize,
        adj0: &[Vec<u32>],
        match0: &mut [u32],
        match1: &mut [u32],
        visited: &mut [u64],
        round: u64,
    ) -> bool {
        for &j in &adj0[i] {
            let j = j as usize;
            if visited[j] == round {
                continue;
            }
            visited[j] = round;
            if match1[j] == u32::MAX
                || augment(match1[j] as usize, adj0, match0, match1, visited, round)
            {
                match1[j] = i as u32;
                match0[i] = j as u32;
                return true;
            }
        }
        false
    }
    for i in 0..n0 {
        augment(i, adj0, &mut match0, &mut match1, &mut visited, i as u64);
    }
    (match0, match1)
}

/// Verifies that removing the separator disconnects the two sides (test
/// helper, also used by debug assertions in the ND driver).
pub fn separator_is_valid(g: &CsrGraph, side: &[u8]) -> bool {
    for v in 0..g.n() {
        if side[v] == 2 {
            continue;
        }
        for &u in g.neighbors(v) {
            if side[u as usize] != 2 && side[u as usize] != side[v] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    #[test]
    fn bisection_is_balanced_on_grid() {
        let g = grid(16, 16);
        let part = edge_bisection(&g, &BisectOptions::default());
        let c0 = part.iter().filter(|&&p| p == 0).count();
        let c1 = part.len() - c0;
        assert!(c0 > 0 && c1 > 0);
        let ratio = c0.max(c1) as f64 / (part.len() as f64 / 2.0);
        assert!(ratio < 1.3, "imbalance {ratio}");
    }

    #[test]
    fn separator_separates_grid() {
        let g = grid(12, 12);
        let r = vertex_separator(&g, &BisectOptions::default());
        assert!(separator_is_valid(&g, &r.side));
        assert!(r.counts[0] > 0 && r.counts[1] > 0);
        // A 12x12 grid has a natural separator of ~12 vertices; allow slack.
        assert!(r.counts[2] <= 30, "separator too fat: {}", r.counts[2]);
    }

    #[test]
    fn separator_on_path_is_tiny() {
        let n = 100;
        let g = CsrGraph::from_edges(n, &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let r = vertex_separator(&g, &BisectOptions::default());
        assert!(separator_is_valid(&g, &r.side));
        assert!(r.counts[2] <= 3, "path separator: {}", r.counts[2]);
    }

    #[test]
    fn handles_disconnected_graphs() {
        let g = CsrGraph::from_edges(10, &[(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (8, 9)]);
        let r = vertex_separator(&g, &BisectOptions::default());
        assert!(separator_is_valid(&g, &r.side));
    }

    #[test]
    fn handles_tiny_graphs() {
        for n in 1..5usize {
            let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1) as u32).map(|i| (i, i + 1)).collect();
            let g = CsrGraph::from_edges(n, &edges);
            let r = vertex_separator(&g, &BisectOptions::default());
            assert!(separator_is_valid(&g, &r.side));
            assert_eq!(r.counts[0] + r.counts[1] + r.counts[2], n);
        }
    }

    #[test]
    fn matching_simple() {
        // 2x2 complete bipartite: perfect matching of size 2.
        let adj = vec![vec![0, 1], vec![0, 1]];
        let (m0, m1) = max_bipartite_matching(&adj, 2);
        assert!(m0.iter().all(|&m| m != u32::MAX));
        assert!(m1.iter().all(|&m| m != u32::MAX));
        assert_ne!(m0[0], m0[1]);
    }

    #[test]
    fn koenig_cover_smaller_than_boundary() {
        // Star across the cut: left {0}, right {1,2,3} all adjacent to 0.
        // Cover should be just vertex 0.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 4)]);
        let r = vertex_separator(&g, &BisectOptions { seed: 3, ..Default::default() });
        assert!(separator_is_valid(&g, &r.side));
        assert!(r.counts[2] <= 2);
    }

    #[test]
    fn imbalance_bound_respected_after_refinement() {
        let g = grid(14, 14);
        for tol in [1.05f64, 1.2, 1.5] {
            let part = edge_bisection(&g, &BisectOptions { imbalance: tol, ..Default::default() });
            let c0 = part.iter().filter(|&&p| p == 0).count();
            let c1 = part.len() - c0;
            let ratio = c0.max(c1) as f64 / (part.len() as f64 / 2.0);
            // The initial growing targets half the weight; refinement must
            // not push beyond the configured tolerance by more than one
            // vertex worth of slack.
            assert!(ratio <= tol + 2.0 / part.len() as f64 * 2.0 + 0.15, "tol {tol}: ratio {ratio}");
        }
    }

    #[test]
    fn complete_graph_separator() {
        // K6: any split works; the separator must still be valid.
        let mut e = Vec::new();
        for i in 0..6u32 {
            for j in 0..i {
                e.push((i, j));
            }
        }
        let g = CsrGraph::from_edges(6, &e);
        let r = vertex_separator(&g, &BisectOptions::default());
        assert!(separator_is_valid(&g, &r.side));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid(10, 10);
        let a = vertex_separator(&g, &BisectOptions::default());
        let b = vertex_separator(&g, &BisectOptions::default());
        assert_eq!(a.side, b.side);
    }
}
