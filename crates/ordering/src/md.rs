//! Quotient-graph minimum degree ordering with halo support.
//!
//! This is the "(Halo) Approximate Minimum Degree" leg of the paper's
//! ordering strategy: nested dissection handles the top of the tree and the
//! remaining subgraphs are ordered by minimum degree, *taking into account
//! the halo* — the separator vertices adjacent to the subgraph, which are
//! eliminated later and therefore contribute fill to the subgraph but must
//! never be picked as pivots (Pellegrini, Roman & Amestoy).
//!
//! The implementation uses the classical quotient-graph machinery of AMD
//! (elements absorbing elements, supervariable merging by adjacency
//! hashing, mass elimination) with *exact* external degrees rather than
//! the AMD upper bound — an accuracy/simplicity trade-off that is
//! immaterial at the subgraph sizes nested dissection leaves behind, and
//! documented as such in DESIGN.md.

use pastix_graph::CsrGraph;
use std::collections::BinaryHeap;
use std::cmp::Reverse;

/// Ordering produced by [`min_degree`]: ranks for the eliminable vertices.
#[derive(Debug, Clone)]
pub struct MdOrder {
    /// `order[r] = local vertex id eliminated at rank r`; halo vertices do
    /// not appear.
    pub order: Vec<u32>,
}

/// Runs (halo) minimum degree on `g`. `is_halo[v]` marks vertices that are
/// adjacent context only: they contribute to degrees and fill but are never
/// eliminated and receive no rank. Returns the elimination order of the
/// non-halo vertices.
pub fn min_degree(g: &CsrGraph, is_halo: &[bool]) -> MdOrder {
    let n = g.n();
    assert_eq!(is_halo.len(), n);
    let mut q = Quotient::new(g, is_halo);
    let n_elim: usize = is_halo.iter().filter(|&&h| !h).count();
    let mut order = Vec::with_capacity(n_elim);

    // Lazy min-heap of (degree, vertex). Stale entries are skipped on pop.
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = BinaryHeap::new();
    for v in 0..n {
        if !is_halo[v] {
            heap.push(Reverse((q.degree[v], v as u32)));
        }
    }

    while order.len() < n_elim {
        let (deg, p) = loop {
            let Reverse((d, v)) = heap.pop().expect("heap exhausted before ordering finished");
            let v = v as usize;
            if q.state[v] == State::Variable && !q.is_halo[v] && q.degree[v] == d {
                break (d, v);
            }
        };
        let _ = deg;
        // Eliminate the supervariable p: p and everything absorbed into it
        // get consecutive ranks.
        q.emit_supervariable(p, &mut order);
        let touched = q.eliminate(p);
        for &v in &touched {
            if q.state[v as usize] == State::Variable && !q.is_halo[v as usize] {
                heap.push(Reverse((q.degree[v as usize], v)));
            }
        }
    }
    MdOrder { order }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// Still a variable (possibly a supervariable principal).
    Variable,
    /// Eliminated: now an element of the quotient graph.
    Element,
    /// Absorbed into another supervariable or element; inert.
    Dead,
}

/// The quotient graph: variables hold plain adjacency (to variables) and a
/// list of adjacent elements; an element holds its variable list.
struct Quotient<'a> {
    g: &'a CsrGraph,
    is_halo: Vec<bool>,
    state: Vec<State>,
    /// Supervariable weight (number of original vertices represented).
    weight: Vec<u32>,
    /// Next vertex absorbed into this supervariable (intrusive list).
    sv_next: Vec<u32>,
    /// Variable→variable adjacency (kept pruned of dead/eliminated ids).
    var_adj: Vec<Vec<u32>>,
    /// Variable→element adjacency.
    var_elems: Vec<Vec<u32>>,
    /// Element→variable lists.
    elem_vars: Vec<Vec<u32>>,
    /// External degree of each variable (sum of weights of distinct
    /// adjacent variables, through both plain edges and elements).
    degree: Vec<u32>,
    /// Visit stamps for set unions.
    stamp: Vec<u64>,
    cur_stamp: u64,
}

impl<'a> Quotient<'a> {
    fn new(g: &'a CsrGraph, is_halo: &[bool]) -> Self {
        let n = g.n();
        let var_adj: Vec<Vec<u32>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();
        let mut q = Quotient {
            g,
            is_halo: is_halo.to_vec(),
            state: vec![State::Variable; n],
            weight: vec![1; n],
            sv_next: vec![u32::MAX; n],
            var_adj,
            var_elems: vec![Vec::new(); n],
            elem_vars: vec![Vec::new(); n],
            degree: vec![0; n],
            stamp: vec![0; n],
            cur_stamp: 0,
        };
        for v in 0..n {
            q.degree[v] = q.g.degree(v) as u32;
        }
        q
    }

    fn bump_stamp(&mut self) -> u64 {
        self.cur_stamp += 1;
        self.cur_stamp
    }

    /// Pushes `p` and its absorbed chain into the order vector.
    fn emit_supervariable(&self, p: usize, order: &mut Vec<u32>) {
        let mut v = p as u32;
        while v != u32::MAX {
            order.push(v);
            v = self.sv_next[v as usize];
        }
    }

    /// Eliminates variable `p`, forming a new element; returns the set of
    /// variables whose degrees changed.
    fn eliminate(&mut self, p: usize) -> Vec<u32> {
        debug_assert_eq!(self.state[p], State::Variable);
        // Gather L_p = (A_p ∪ ⋃_{e ∋ p} L_e) \ {p}: the variables of the
        // new element.
        let s = self.bump_stamp();
        self.stamp[p] = s;
        let mut lp: Vec<u32> = Vec::new();
        for &v in &self.var_adj[p] {
            let v = v as usize;
            if self.state[v] == State::Variable && self.stamp[v] != s {
                self.stamp[v] = s;
                lp.push(v as u32);
            }
        }
        let elems = std::mem::take(&mut self.var_elems[p]);
        for &e in &elems {
            for &v in &self.elem_vars[e as usize] {
                let v = v as usize;
                if self.state[v] == State::Variable && v != p && self.stamp[v] != s {
                    self.stamp[v] = s;
                    lp.push(v as u32);
                }
            }
            // Element absorption: e disappears into the new element p.
            self.elem_vars[e as usize].clear();
            self.state[e as usize] = State::Dead;
        }
        self.state[p] = State::Element;
        self.elem_vars[p] = lp.clone();

        // Update each variable in L_p: remove absorbed elements and p from
        // its lists, attach the new element, recompute exact degree.
        for &v in &lp {
            let v = v as usize;
            // Prune var_adj of p and of fellow L_p members (those edges are
            // now covered by the element) — keeping lists short is what
            // makes the quotient graph efficient.
            let stamp_now = s;
            let mut adj = std::mem::take(&mut self.var_adj[v]);
            adj.retain(|&u| {
                let u = u as usize;
                self.state[u] == State::Variable && self.stamp[u] != stamp_now
            });
            self.var_adj[v] = adj;
            let mut els = std::mem::take(&mut self.var_elems[v]);
            els.retain(|&e| self.state[e as usize] == State::Element);
            els.push(p as u32);
            self.var_elems[v] = els;
        }

        // Supervariable detection: hash variables of L_p by their adjacency
        // signature and merge indistinguishable ones.
        self.merge_supervariables(&lp);

        // Exact external degrees for (surviving) members of L_p.
        let survivors: Vec<u32> = lp
            .iter()
            .copied()
            .filter(|&v| self.state[v as usize] == State::Variable)
            .collect();
        for &v in &survivors {
            self.degree[v as usize] = self.exact_degree(v as usize);
        }
        survivors
    }

    /// Exact external degree of `v`: total weight of distinct variables
    /// reachable through plain edges or shared elements.
    fn exact_degree(&mut self, v: usize) -> u32 {
        let s = self.bump_stamp();
        self.stamp[v] = s;
        let mut d = 0u32;
        for &u in &self.var_adj[v] {
            let u = u as usize;
            if self.state[u] == State::Variable && self.stamp[u] != s {
                self.stamp[u] = s;
                d += self.weight[u];
            }
        }
        for &e in &self.var_elems[v] {
            for &u in &self.elem_vars[e as usize] {
                let u = u as usize;
                if self.state[u] == State::Variable && u != v && self.stamp[u] != s {
                    self.stamp[u] = s;
                    d += self.weight[u];
                }
            }
        }
        d
    }

    /// Merges indistinguishable variables among `cands` (same element list
    /// and same pruned variable adjacency ⇒ identical future fill). Halo
    /// and non-halo variables are never merged together.
    fn merge_supervariables(&mut self, cands: &[u32]) {
        use std::collections::HashMap;
        let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
        for &v in cands {
            if self.state[v as usize] != State::Variable {
                continue;
            }
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            let mut mix = |x: u64| {
                h ^= x;
                h = h.wrapping_mul(0x1000_0000_01b3);
            };
            let mut es: Vec<u32> = self.var_elems[v as usize].clone();
            es.sort_unstable();
            for e in es {
                mix(e as u64 + 1);
            }
            mix(0xFFFF_FFFF);
            let mut vs: Vec<u32> = self.var_adj[v as usize]
                .iter()
                .copied()
                .filter(|&u| self.state[u as usize] == State::Variable)
                .collect();
            vs.sort_unstable();
            vs.dedup();
            for u in vs {
                mix(u as u64 + 1);
            }
            buckets.entry(h).or_default().push(v);
        }
        for (_, group) in buckets {
            if group.len() < 2 {
                continue;
            }
            // Verify true indistinguishability pairwise within the bucket
            // (hash collisions must not corrupt the ordering).
            let mut reps: Vec<u32> = Vec::new();
            'outer: for &v in &group {
                if self.state[v as usize] != State::Variable {
                    continue;
                }
                for &r in &reps {
                    if self.is_halo[v as usize] == self.is_halo[r as usize]
                        && self.indistinguishable(r as usize, v as usize)
                    {
                        self.absorb(r as usize, v as usize);
                        continue 'outer;
                    }
                }
                reps.push(v);
            }
        }
    }

    /// True when `a` and `b` have identical element lists and identical
    /// live variable adjacency (modulo each other).
    fn indistinguishable(&mut self, a: usize, b: usize) -> bool {
        let ea: Vec<u32> = {
            let mut e = self.var_elems[a].clone();
            e.sort_unstable();
            e
        };
        let eb: Vec<u32> = {
            let mut e = self.var_elems[b].clone();
            e.sort_unstable();
            e
        };
        if ea != eb {
            return false;
        }
        let clean = |q: &Quotient, v: usize, other: usize| -> Vec<u32> {
            let mut vs: Vec<u32> = q.var_adj[v]
                .iter()
                .copied()
                .filter(|&u| q.state[u as usize] == State::Variable && u as usize != other)
                .collect();
            vs.sort_unstable();
            vs.dedup();
            vs
        };
        clean(self, a, b) == clean(self, b, a)
    }

    /// Absorbs supervariable `b` into `a`.
    fn absorb(&mut self, a: usize, b: usize) {
        debug_assert_eq!(self.state[b], State::Variable);
        self.weight[a] += self.weight[b];
        self.state[b] = State::Dead;
        // Append b's chain to a's chain.
        let mut tail = a;
        while self.sv_next[tail] != u32::MAX {
            tail = self.sv_next[tail] as usize;
        }
        self.sv_next[tail] = b as u32;
        self.var_adj[b].clear();
        self.var_elems[b].clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pastix_graph::CsrGraph;

    fn path(n: usize) -> CsrGraph {
        CsrGraph::from_edges(n, &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    fn assert_is_permutation(order: &[u32], n: usize, halo: &[bool]) {
        let n_elim = halo.iter().filter(|&&h| !h).count();
        assert_eq!(order.len(), n_elim);
        let mut seen = vec![false; n];
        for &v in order {
            assert!(!seen[v as usize], "duplicate {v}");
            assert!(!halo[v as usize], "halo vertex {v} was ordered");
            seen[v as usize] = true;
        }
    }

    #[test]
    fn orders_path_completely() {
        let g = path(10);
        let halo = vec![false; 10];
        let o = min_degree(&g, &halo);
        assert_is_permutation(&o.order, 10, &halo);
        // On a path, minimum degree should not eliminate an interior vertex
        // before its neighbors make it degree-1 — first pivot has degree 1.
        let first = o.order[0] as usize;
        assert!(g.degree(first) == 1);
    }

    #[test]
    fn orders_grid_completely() {
        let g = grid(7, 6);
        let halo = vec![false; 42];
        let o = min_degree(&g, &halo);
        assert_is_permutation(&o.order, 42, &halo);
    }

    #[test]
    fn halo_vertices_excluded_but_counted() {
        // Star: center 0 connected to 1..=4; mark 0 as halo. All leaves have
        // degree 1 (the halo center) and can be eliminated in any order.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let halo = vec![true, false, false, false, false];
        let o = min_degree(&g, &halo);
        assert_is_permutation(&o.order, 5, &halo);
    }

    #[test]
    fn halo_raises_degree_and_changes_pivots() {
        // Path 0-1-2-3-4 with halo at 0: vertex 1 now behaves like an
        // interior vertex (degree 2), so the first pivot must be vertex 4
        // (the only true degree-1 eliminable vertex).
        let g = path(5);
        let halo = vec![true, false, false, false, false];
        let o = min_degree(&g, &halo);
        assert_eq!(o.order[0], 4);
    }

    #[test]
    fn clique_orders_all_with_mass_elimination() {
        // K5: all vertices indistinguishable; supervariable merging should
        // cause them to be emitted in one or two pivots, but all 5 appear.
        let mut e = Vec::new();
        for i in 0..5u32 {
            for j in 0..i {
                e.push((i, j));
            }
        }
        let g = CsrGraph::from_edges(5, &e);
        let halo = vec![false; 5];
        let o = min_degree(&g, &halo);
        assert_is_permutation(&o.order, 5, &halo);
    }

    #[test]
    fn disconnected_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3)]);
        let halo = vec![false; 6];
        let o = min_degree(&g, &halo);
        assert_is_permutation(&o.order, 6, &halo);
    }

    #[test]
    fn all_halo_is_empty_order() {
        let g = path(4);
        let halo = vec![true; 4];
        let o = min_degree(&g, &halo);
        assert!(o.order.is_empty());
    }

    #[test]
    fn star_center_not_an_early_pivot() {
        // Star K(1,6): leaves have degree 1, center 6 — minimum degree
        // must burn through several leaves before the center's degree can
        // compete (it may legally beat the *last* leaf on a tie).
        let edges: Vec<(u32, u32)> = (1..7u32).map(|v| (0, v)).collect();
        let g = CsrGraph::from_edges(7, &edges);
        let o = min_degree(&g, &[false; 7]);
        let pos = o.order.iter().position(|&v| v == 0).unwrap();
        assert!(pos >= 4, "center eliminated at position {pos}");
    }

    #[test]
    fn two_cliques_bridge_is_perfect_first_pivot() {
        // Two K4s joined by a degree-2 bridge vertex: the bridge has the
        // global minimum degree, so MD eliminates it first — and that is
        // the right call (fill = one edge between the cliques). Verify it
        // happens and the ordering stays complete.
        let mut e = Vec::new();
        for i in 0..4u32 {
            for j in 0..i {
                e.push((i, j));
                e.push((i + 5, j + 5));
            }
        }
        e.push((3, 4));
        e.push((4, 5));
        let g = CsrGraph::from_edges(9, &e);
        let o = min_degree(&g, &[false; 9]);
        assert_eq!(o.order[0], 4, "the degree-2 bridge is the minimum");
        assert_eq!(o.order.len(), 9);
    }

    #[test]
    fn deterministic() {
        let g = grid(9, 9);
        let halo = vec![false; 81];
        let a = min_degree(&g, &halo).order;
        let b = min_degree(&g, &halo).order;
        assert_eq!(a, b);
    }
}
