//! Reverse Cuthill–McKee ordering.
//!
//! The classical bandwidth-reducing ordering: BFS from a pseudo-peripheral
//! vertex, visiting neighbors by increasing degree, then reversing the
//! order. It is *not* a fill-reducing ordering in the nested-dissection
//! sense — it is included as the baseline that shows why the paper's
//! ordering phase matters: on 2D/3D meshes RCM's profile factorization
//! does asymptotically more work than ND's, and the comparison example
//! makes that visible.

use pastix_graph::{CsrGraph, Permutation};

/// Computes the reverse Cuthill–McKee ordering of `g`. Disconnected
/// components are processed one after the other, each from its own
/// pseudo-peripheral seed.
pub fn reverse_cuthill_mckee(g: &CsrGraph) -> Permutation {
    let n = g.n();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut nbrs: Vec<u32> = Vec::new();
    for seed0 in 0..n {
        if visited[seed0] {
            continue;
        }
        // Pseudo-peripheral start within this component.
        let seed = g.pseudo_peripheral(seed0);
        let start = order.len();
        visited[seed] = true;
        order.push(seed as u32);
        let mut head = start;
        while head < order.len() {
            let u = order[head] as usize;
            head += 1;
            nbrs.clear();
            nbrs.extend(g.neighbors(u).iter().copied().filter(|&v| !visited[v as usize]));
            // Cuthill–McKee visits low-degree neighbors first.
            nbrs.sort_by_key(|&v| g.degree(v as usize));
            for &v in &nbrs {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    order.push(v);
                }
            }
        }
    }
    order.reverse();
    Permutation::from_perm(order)
}

/// Bandwidth of the matrix pattern under a permutation:
/// `max |new(i) − new(j)|` over the edges.
pub fn bandwidth(g: &CsrGraph, p: &Permutation) -> usize {
    let mut bw = 0usize;
    for u in 0..g.n() {
        let nu = p.new_of(u);
        for &v in g.neighbors(u) {
            let nv = p.new_of(v as usize);
            bw = bw.max(nu.abs_diff(nv));
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize) -> CsrGraph {
        let mut e = Vec::new();
        let id = |x: usize, y: usize| (x + nx * y) as u32;
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    e.push((id(x, y), id(x + 1, y)));
                }
                if y + 1 < ny {
                    e.push((id(x, y), id(x, y + 1)));
                }
            }
        }
        CsrGraph::from_edges(nx * ny, &e)
    }

    #[test]
    fn produces_valid_permutation() {
        let g = grid(9, 7);
        let p = reverse_cuthill_mckee(&g);
        assert!(p.validate());
        assert_eq!(p.len(), 63);
    }

    #[test]
    fn reduces_bandwidth_on_shuffled_grid() {
        // Scramble a grid, then check RCM restores a banded profile.
        let g = grid(12, 12);
        let scramble = Permutation::from_perm({
            let mut v: Vec<u32> = (0..144).collect();
            // Deterministic shuffle.
            let mut s = 0x9E37u64;
            for i in (1..144usize).rev() {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                v.swap(i, (s % (i as u64 + 1)) as usize);
            }
            v
        });
        let gs = g.permuted(&scramble);
        let identity_bw = bandwidth(&gs, &Permutation::identity(144));
        let rcm = reverse_cuthill_mckee(&gs);
        let rcm_bw = bandwidth(&gs, &rcm);
        assert!(
            rcm_bw * 3 < identity_bw,
            "RCM bandwidth {rcm_bw} vs scrambled {identity_bw}"
        );
        // A 12x12 grid has optimal bandwidth 12; allow modest slack.
        assert!(rcm_bw <= 24, "bandwidth {rcm_bw} too large");
    }

    #[test]
    fn handles_disconnected_and_isolated() {
        let g = CsrGraph::from_edges(7, &[(0, 1), (1, 2), (4, 5)]);
        let p = reverse_cuthill_mckee(&g);
        assert!(p.validate());
    }

    #[test]
    fn path_is_ordered_end_to_end() {
        let n = 20;
        let g = CsrGraph::from_edges(n, &(0..n as u32 - 1).map(|i| (i, i + 1)).collect::<Vec<_>>());
        let p = reverse_cuthill_mckee(&g);
        assert_eq!(bandwidth(&g, &p), 1, "a path must become tridiagonal");
    }
}
