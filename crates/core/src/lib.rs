//! # pastix — a Rust reproduction of the PaStiX parallel sparse direct solver
//!
//! PaStiX (Hénon, Ramet, Roman — IPPS/IPDPS 2000) solves large sparse
//! symmetric positive definite (and complex symmetric) systems `A·x = b`
//! by supernodal `L·D·Lᵀ` factorization without pivoting, parallelized by
//! a **static schedule of block computations over a mixed 1D/2D block
//! distribution**. This crate is the facade over the full pipeline:
//!
//! 1. ordering — nested dissection tightly coupled with halo minimum
//!    degree (`pastix-ordering`);
//! 2. block symbolic factorization — supernodes, amalgamation, the block
//!    symbol matrix (`pastix-symbolic`);
//! 3. block repartitioning and static scheduling — candidate processors by
//!    proportional mapping, 1D/2D switch, splitting by the BLAS blocking
//!    size, greedy mapping by simulation (`pastix-sched`);
//! 4. numeric factorization — the supernodal fan-in solver driven by the
//!    schedule, on threads (`pastix-solver` + `pastix-runtime`), plus the
//!    sequential reference and the triangular solves.
//!
//! The entry path is the [`solver::Plan`] API: one [`solver::SolverConfig`]
//! value drives analyze, factorize, and solve.
//!
//! ```
//! use pastix::solver::{Plan, SolverConfig};
//! use pastix::graph::gen::{grid_spd, Stencil, ValueKind};
//!
//! // A small SPD system from a 3D grid.
//! let a = grid_spd::<f64>(6, 6, 3, Stencil::Star, false, ValueKind::Laplacian);
//! let x_exact = pastix::graph::canonical_solution::<f64>(a.n());
//! let b = pastix::graph::rhs_for_solution(&a, &x_exact);
//!
//! let cfg = SolverConfig::default(); // 4 procs, static schedule, threads
//! let plan = Plan::analyze(&a, &cfg);
//! let run = plan.factorize(&a, &cfg).unwrap();
//! let x = run.solve(&b);
//! assert!(a.residual_norm(&x, &b) < 1e-12);
//! ```

#![warn(missing_docs)]

pub use pastix_graph as graph;
pub use pastix_kernels as kernels;
pub use pastix_machine as machine;
pub use pastix_multifrontal as multifrontal;
pub use pastix_ordering as ordering;
pub use pastix_runtime as runtime;
pub use pastix_sched as sched;
pub use pastix_serve as serve;
pub use pastix_solver as solver;
pub use pastix_symbolic as symbolic;
pub use pastix_trace as trace;

use pastix_graph::{Permutation, SymCsc};
use pastix_kernels::factor::FactorError;
use pastix_kernels::Scalar;
use pastix_machine::MachineModel;
use pastix_sched::SchedOptions;
use pastix_solver::{
    factorize_sequential, run_from_storage, solve_in_place, AnalyzeOptions, FactorRun,
    FactorStorage, Plan, SolverConfig,
};
use pastix_symbolic::AnalysisOptions;

/// Errors surfaced by the facade.
#[derive(Debug)]
pub enum PastixError {
    /// Numeric factorization failed (zero or non-finite pivot at the given
    /// column of the permuted matrix).
    Factor(FactorError),
    /// The matrix handed to `factorize` does not match the analyzed one.
    ShapeMismatch {
        /// Order expected from the analysis.
        expected: usize,
        /// Order of the offending matrix.
        got: usize,
    },
}

impl std::fmt::Display for PastixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PastixError::Factor(e) => write!(f, "factorization failed: {e}"),
            PastixError::ShapeMismatch { expected, got } => {
                write!(f, "matrix order {got} does not match analysis ({expected})")
            }
        }
    }
}

impl std::error::Error for PastixError {}

impl From<FactorError> for PastixError {
    fn from(e: FactorError) -> Self {
        PastixError::Factor(e)
    }
}

/// Options of the whole pipeline.
///
/// Superseded by [`solver::AnalyzeOptions`] inside a
/// [`solver::SolverConfig`]; [`PastixOptions::to_analyze_options`] is the
/// exact translation this shim hands to [`Plan::analyze`].
#[deprecated(
    since = "0.2.0",
    note = "use solver::AnalyzeOptions inside a SolverConfig; this shim forwards to Plan::analyze and will be removed next release"
)]
#[derive(Debug, Clone)]
pub struct PastixOptions {
    /// Ordering phase knobs (nested dissection + halo minimum degree).
    pub ordering: pastix_ordering::OrderingOptions,
    /// Symbolic phase knobs (amalgamation).
    pub analysis: AnalysisOptions,
    /// Repartitioning/scheduling knobs (blocking size, 1D/2D switch).
    pub sched: SchedOptions,
    /// The machine to schedule for. `n_procs` doubles as the number of
    /// logical processors (threads) of the parallel numeric phase.
    pub machine: MachineModel,
    /// Run the numeric factorization with the threaded fan-in solver; when
    /// false (or `n_procs == 1`) the sequential reference is used.
    pub parallel_numeric: bool,
}

#[allow(deprecated)]
impl Default for PastixOptions {
    fn default() -> Self {
        Self {
            ordering: pastix_ordering::OrderingOptions::scotch_like(),
            analysis: AnalysisOptions::default(),
            sched: SchedOptions::default(),
            machine: MachineModel::sp2(4),
            parallel_numeric: true,
        }
    }
}

#[allow(deprecated)]
impl PastixOptions {
    /// A convenient preset for `p` logical processors.
    pub fn with_procs(p: usize) -> Self {
        Self {
            machine: MachineModel::sp2(p),
            ..Self::default()
        }
    }

    /// The equivalent [`AnalyzeOptions`] — what [`Pastix::analyze`]
    /// actually hands to [`Plan::analyze`].
    pub fn to_analyze_options(&self) -> AnalyzeOptions {
        AnalyzeOptions {
            procs: self.machine.n_procs,
            machine: Some(self.machine.clone()),
            parallelism: self.ordering.parallelism,
            ordering: self.ordering.clone(),
            analysis: self.analysis.clone(),
            sched: self.sched.clone(),
            static_schedule: true,
        }
    }
}

/// The analyzed (pre-numeric) state: a thin wrapper over [`Plan`].
///
/// Superseded by [`solver::Plan`]: `Pastix::analyze` now *is*
/// [`Plan::analyze`] plus this compatibility surface, and the wrapped plan
/// is reachable through [`Pastix::plan`].
#[deprecated(
    since = "0.2.0",
    note = "use solver::Plan::analyze / Plan::factorize; this shim will be removed next release"
)]
pub struct Pastix {
    #[allow(deprecated)]
    options: PastixOptions,
    plan: Plan,
    cfg: SolverConfig,
}

#[allow(deprecated)]
impl Pastix {
    /// Runs the three pre-processing phases on the pattern of `a` by
    /// delegating to [`Plan::analyze`].
    pub fn analyze<T: Scalar>(a: &SymCsc<T>, options: &PastixOptions) -> Result<Self, PastixError> {
        let cfg = SolverConfig::default().with_analyze(options.to_analyze_options());
        let plan = Plan::analyze(a, &cfg);
        Ok(Self {
            options: options.clone(),
            plan,
            cfg,
        })
    }

    /// The bundled [`Plan`] over the same artifacts (cheaply clonable).
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The final fill-reducing permutation.
    pub fn permutation(&self) -> &Permutation {
        self.plan.permutation().expect("analyzed plans own a permutation")
    }

    /// Predicted parallel factorization time of the static schedule, i.e.
    /// the discrete-event "Table 2" number for this machine model.
    pub fn predicted_time(&self) -> f64 {
        self.plan.schedule().expect("analyzed plans own a schedule").makespan
    }

    /// Factor nonzeros (off-diagonal, scalar convention of the paper).
    pub fn nnz_l(&self) -> u64 {
        self.plan.analyze_stats().expect("analyzed plans carry stats").scalar_nnz_offdiag
    }

    /// Operation count (`(c_j + 1)²` convention of the paper's `OPC`).
    pub fn opc(&self) -> f64 {
        self.plan.analyze_stats().expect("analyzed plans carry stats").scalar_opc
    }

    /// Runs the numeric factorization of `a` (same pattern as analyzed).
    pub fn factorize<T: Scalar>(&self, a: &SymCsc<T>) -> Result<Factorized<'_, T>, PastixError> {
        if a.n() != self.plan.n() {
            return Err(PastixError::ShapeMismatch {
                expected: self.plan.n(),
                got: a.n(),
            });
        }
        let run = if self.options.parallel_numeric && self.options.machine.n_procs > 1 {
            self.plan.factorize(a, &self.cfg)?
        } else {
            let ap = a.permuted(self.permutation());
            let sym = self.plan.symbol();
            let mut st = FactorStorage::zeros(sym);
            st.scatter(sym, &ap);
            factorize_sequential(sym, &mut st)?;
            run_from_storage(st, &self.plan, &self.cfg)
        };
        Ok(Factorized { parent: self, run })
    }
}

/// A numeric factorization ready to solve systems.
///
/// Superseded by [`solver::FactorRun`] (from [`Plan::factorize`]), whose
/// `solve_request`-based methods cover every solve variant here.
#[deprecated(
    since = "0.2.0",
    note = "use the FactorRun returned by Plan::factorize; this shim will be removed next release"
)]
pub struct Factorized<'a, T> {
    #[allow(deprecated)]
    parent: &'a Pastix,
    run: FactorRun<T>,
}

#[allow(deprecated)]
impl<T: Scalar> Factorized<'_, T> {
    /// Solves `A·x = b` (in the original ordering).
    pub fn solve(&self, b: &[T]) -> Vec<T> {
        let perm = self.parent.permutation();
        let mut x = perm.apply_vec(b);
        solve_in_place(self.parent.plan.symbol(), &self.run.storage, &mut x);
        perm.unapply_vec(&x)
    }

    /// Solves several right-hand sides.
    pub fn solve_many(&self, bs: &[Vec<T>]) -> Vec<Vec<T>> {
        bs.iter().map(|b| self.solve(b)).collect()
    }

    /// Solves `nrhs` right-hand sides at once with the blocked sweeps
    /// (`b` is `n × nrhs` column-major); one factor traversal total
    /// instead of one per column.
    pub fn solve_block(&self, b: &[T], nrhs: usize) -> Vec<T> {
        let n = self.parent.plan.n();
        assert_eq!(b.len(), n * nrhs);
        let perm = self.parent.permutation();
        let mut x = vec![T::zero(); n * nrhs];
        for r in 0..nrhs {
            let xp = perm.apply_vec(&b[r * n..(r + 1) * n]);
            x[r * n..(r + 1) * n].copy_from_slice(&xp);
        }
        pastix_solver::solve_block_in_place(
            self.parent.plan.symbol(),
            &self.run.storage,
            &mut x,
            nrhs,
        );
        let mut out = vec![T::zero(); n * nrhs];
        for r in 0..nrhs {
            let xo = perm.unapply_vec(&x[r * n..(r + 1) * n]);
            out[r * n..(r + 1) * n].copy_from_slice(&xo);
        }
        out
    }

    /// Solves `A·x = b` with the **distributed** triangular sweeps: the
    /// solve phase runs on the same logical processors and ownership as
    /// the factorization, with fan-in aggregation of the update segments.
    /// Delegates to the run's plan-driven solve path.
    pub fn solve_distributed(&self, b: &[T]) -> Vec<T> {
        self.run.solve(b)
    }

    /// The underlying factor storage (split-symbol panels).
    pub fn storage(&self) -> &FactorStorage<T> {
        &self.run.storage
    }

    /// The full factorization run (factor + trace + metrics + plan).
    pub fn run(&self) -> &FactorRun<T> {
        &self.run
    }

    /// Solves with iterative refinement: after the direct solve, residual
    /// correction steps `x ← x + A⁻¹(b − A·x)` run until the scaled
    /// residual stops improving or `max_steps` is reached. Returns the
    /// solution and the final scaled residual. Refinement recovers the
    /// digits a pivoting-free `L·D·Lᵀ` can lose on ill-conditioned systems.
    pub fn solve_refined(&self, a: &SymCsc<T>, b: &[T], max_steps: usize) -> (Vec<T>, f64) {
        let mut x = self.solve(b);
        let mut best = a.residual_norm(&x, b);
        for _ in 0..max_steps {
            let ax = a.matvec(&x);
            let r: Vec<T> = b.iter().zip(&ax).map(|(&bi, &axi)| bi - axi).collect();
            let dx = self.solve(&r);
            let candidate: Vec<T> = x.iter().zip(&dx).map(|(&xi, &di)| xi + di).collect();
            let res = a.residual_norm(&candidate, b);
            if res >= best {
                break;
            }
            x = candidate;
            best = res;
        }
        (x, best)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use pastix_graph::gen::{grid_spd, Stencil, ValueKind};
    use pastix_graph::{canonical_solution, rhs_for_solution};

    fn sample() -> SymCsc<f64> {
        grid_spd::<f64>(7, 6, 2, Stencil::Star, false, ValueKind::RandomSpd(2))
    }

    #[test]
    fn end_to_end_sequential() {
        let a = sample();
        let mut opts = PastixOptions::with_procs(1);
        opts.sched.block_size = 16;
        let solver = Pastix::analyze(&a, &opts).unwrap();
        let f = solver.factorize(&a).unwrap();
        let x_exact = canonical_solution::<f64>(a.n());
        let b = rhs_for_solution(&a, &x_exact);
        let x = f.solve(&b);
        assert!(a.residual_norm(&x, &b) < 1e-12);
    }

    #[test]
    fn end_to_end_parallel() {
        let a = sample();
        let mut opts = PastixOptions::with_procs(4);
        opts.sched.block_size = 8;
        opts.sched.mapping.width_2d_min = 8;
        opts.sched.mapping.procs_2d_min = 2.0;
        let solver = Pastix::analyze(&a, &opts).unwrap();
        let f = solver.factorize(&a).unwrap();
        let x_exact = canonical_solution::<f64>(a.n());
        let b = rhs_for_solution(&a, &x_exact);
        let x = f.solve(&b);
        assert!(a.residual_norm(&x, &b) < 1e-12);
        assert!(solver.predicted_time() > 0.0);
        assert!(solver.nnz_l() > 0);
        assert!(solver.opc() > 0.0);
    }

    #[test]
    fn shape_mismatch_detected() {
        let a = sample();
        let solver = Pastix::analyze(&a, &PastixOptions::default()).unwrap();
        let small = grid_spd::<f64>(3, 3, 1, Stencil::Star, false, ValueKind::Laplacian);
        assert!(matches!(
            solver.factorize(&small),
            Err(PastixError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = PastixError::ShapeMismatch { expected: 10, got: 7 };
        let s = format!("{e}");
        assert!(s.contains("10") && s.contains('7'));
        let f: PastixError = pastix_kernels::FactorError::ZeroPivot(3).into();
        assert!(format!("{f}").contains("pivot"));
    }

    #[test]
    fn with_procs_preset() {
        let o = PastixOptions::with_procs(32);
        assert_eq!(o.machine.n_procs, 32);
        assert!(o.parallel_numeric);
        assert_eq!(o.sched.block_size, 64);
        assert_eq!(o.to_analyze_options().procs, 32);
    }

    #[test]
    fn solve_many_matches_individual() {
        let a = sample();
        let solver = Pastix::analyze(&a, &PastixOptions::with_procs(2)).unwrap();
        let f = solver.factorize(&a).unwrap();
        let b1 = rhs_for_solution(&a, &canonical_solution::<f64>(a.n()));
        let b2: Vec<f64> = (0..a.n()).map(|i| (i % 5) as f64 - 2.0).collect();
        let many = f.solve_many(&[b1.clone(), b2.clone()]);
        assert_eq!(many[0], f.solve(&b1));
        assert_eq!(many[1], f.solve(&b2));
    }
}
